//! Node identity and the position registry.
//!
//! Vehicles and RSUs share one dense id space so the radio layer can treat them
//! uniformly: an RSU is just a node that never moves and additionally hangs off the
//! wired backbone.

use serde::{Deserialize, Serialize};
use std::fmt;
use vanet_geo::{Point, SpatialHash};
use vanet_mobility::VehicleId;
use vanet_roadnet::RsuId;

/// Unified node identifier (dense).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NodeKind {
    /// A vehicle (mobile).
    Vehicle(VehicleId),
    /// A road-side unit (static, wired).
    Rsu(RsuId),
}

/// The registry of all nodes: kinds and live positions, with a spatial index for
/// O(1) amortized "who hears this transmission" queries.
#[derive(Debug, Clone)]
pub struct NodeRegistry {
    kinds: Vec<NodeKind>,
    index: SpatialHash,
    /// Dense per-node positions (ids are dense), so the per-packet `pos()`
    /// lookup is an array index instead of a hash probe. The spatial index
    /// holds the same positions for range queries.
    positions: Vec<Point>,
    /// Reverse maps for protocol convenience.
    vehicle_nodes: Vec<NodeId>,
    rsu_nodes: Vec<NodeId>,
}

impl NodeRegistry {
    /// Creates a registry whose spatial index uses buckets of `cell_size` meters
    /// (use the radio range).
    pub fn new(cell_size: f64) -> Self {
        Self::with_capacity(cell_size, 0)
    }

    /// [`new`](Self::new) pre-sized for `nodes` registrations (vehicles + RSUs
    /// from the scenario config), so filling the registry never rehashes.
    pub fn with_capacity(cell_size: f64, nodes: usize) -> Self {
        NodeRegistry {
            kinds: Vec::with_capacity(nodes),
            index: SpatialHash::with_capacity(cell_size, nodes),
            positions: Vec::with_capacity(nodes),
            vehicle_nodes: Vec::with_capacity(nodes),
            rsu_nodes: Vec::new(),
        }
    }

    /// Registers a vehicle at `pos`. Vehicles must be added in `VehicleId` order.
    pub fn add_vehicle(&mut self, v: VehicleId, pos: Point) -> NodeId {
        assert_eq!(
            v.0 as usize,
            self.vehicle_nodes.len(),
            "vehicles must register in id order"
        );
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Vehicle(v));
        self.positions.push(pos);
        self.index.upsert(id.0 as u64, pos);
        self.vehicle_nodes.push(id);
        id
    }

    /// Registers an RSU at `pos`. RSUs must be added in `RsuId` order.
    pub fn add_rsu(&mut self, r: RsuId, pos: Point) -> NodeId {
        assert_eq!(
            r.0 as usize,
            self.rsu_nodes.len(),
            "RSUs must register in id order"
        );
        let id = NodeId(self.kinds.len() as u32);
        self.kinds.push(NodeKind::Rsu(r));
        self.positions.push(pos);
        self.index.upsert(id.0 as u64, pos);
        self.rsu_nodes.push(id);
        id
    }

    /// Total number of nodes.
    pub fn len(&self) -> usize {
        self.kinds.len()
    }

    /// True if no nodes are registered.
    pub fn is_empty(&self) -> bool {
        self.kinds.is_empty()
    }

    /// The kind of a node.
    pub fn kind(&self, n: NodeId) -> NodeKind {
        self.kinds[n.0 as usize]
    }

    /// Current position of a node.
    #[inline]
    pub fn pos(&self, n: NodeId) -> Point {
        self.positions[n.0 as usize]
    }

    /// Moves a node (vehicles each mobility tick).
    pub fn set_pos(&mut self, n: NodeId, pos: Point) {
        assert!((n.0 as usize) < self.kinds.len(), "unknown node");
        self.positions[n.0 as usize] = pos;
        self.index.upsert(n.0 as u64, pos);
    }

    /// Applies one mobility tick's movement delta stream in a single pass:
    /// equivalent to [`set_pos`](Self::set_pos) per vehicle in iteration order
    /// (the byte-identity contract), but routed through
    /// [`SpatialHash::apply_moves`] so only vehicles whose grid cell changed
    /// touch bucket structure. Returns the cell-crossing/in-place split.
    pub fn apply_vehicle_moves<I>(&mut self, moves: I) -> vanet_geo::GridDeltaStats
    where
        I: IntoIterator<Item = (VehicleId, Point)>,
    {
        let positions = &mut self.positions;
        let vehicle_nodes = &self.vehicle_nodes;
        self.index.apply_moves(moves.into_iter().map(|(v, p)| {
            let n = vehicle_nodes[v.0 as usize];
            positions[n.0 as usize] = p;
            (n.0 as u64, p)
        }))
    }

    /// The node id of a vehicle.
    pub fn node_of_vehicle(&self, v: VehicleId) -> NodeId {
        self.vehicle_nodes[v.0 as usize]
    }

    /// The node id of an RSU.
    pub fn node_of_rsu(&self, r: RsuId) -> NodeId {
        self.rsu_nodes[r.0 as usize]
    }

    /// All vehicle node ids, in `VehicleId` order.
    pub fn vehicle_nodes(&self) -> &[NodeId] {
        &self.vehicle_nodes
    }

    /// All RSU node ids, in `RsuId` order.
    pub fn rsu_nodes(&self) -> &[NodeId] {
        &self.rsu_nodes
    }

    /// Nodes strictly within `radius` of `center`, sorted by id, *excluding* `except`
    /// if provided. One pass, one allocation; the scratch-buffer form is
    /// [`nodes_within_into`](Self::nodes_within_into).
    pub fn nodes_within(&self, center: Point, radius: f64, except: Option<NodeId>) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.nodes_within_into(center, radius, except, &mut out);
        out
    }

    /// Writes the nodes strictly within `radius` of `center` into `out`
    /// (cleared first), sorted by id, excluding `except` if provided. Reusing
    /// one buffer across calls makes the per-transmission neighbor lookup
    /// allocation-free in steady state.
    pub fn nodes_within_into(
        &self,
        center: Point,
        radius: f64,
        except: Option<NodeId>,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        self.index.for_each_within(center, radius, |raw, _| {
            let n = NodeId(raw as u32);
            if Some(n) != except {
                out.push(n);
            }
        });
        out.sort_unstable();
    }

    /// The node nearest to `center` (ties by id), with its distance.
    pub fn nearest(&self, center: Point) -> Option<(NodeId, f64)> {
        self.index
            .nearest(center)
            .map(|(raw, d)| (NodeId(raw as u32), d))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_query() {
        let mut reg = NodeRegistry::new(500.0);
        let v0 = reg.add_vehicle(VehicleId(0), Point::new(0.0, 0.0));
        let v1 = reg.add_vehicle(VehicleId(1), Point::new(100.0, 0.0));
        let r0 = reg.add_rsu(RsuId(0), Point::new(1000.0, 0.0));
        assert_eq!(reg.len(), 3);
        assert_eq!(reg.kind(v0), NodeKind::Vehicle(VehicleId(0)));
        assert_eq!(reg.kind(r0), NodeKind::Rsu(RsuId(0)));
        assert_eq!(reg.node_of_vehicle(VehicleId(1)), v1);
        assert_eq!(reg.node_of_rsu(RsuId(0)), r0);
        assert_eq!(reg.nodes_within(Point::ORIGIN, 150.0, None), vec![v0, v1]);
        assert_eq!(reg.nodes_within(Point::ORIGIN, 150.0, Some(v0)), vec![v1]);
    }

    #[test]
    fn positions_update() {
        let mut reg = NodeRegistry::new(500.0);
        let v = reg.add_vehicle(VehicleId(0), Point::ORIGIN);
        reg.set_pos(v, Point::new(400.0, 300.0));
        assert_eq!(reg.pos(v), Point::new(400.0, 300.0));
        assert!(reg.nodes_within(Point::ORIGIN, 100.0, None).is_empty());
        assert_eq!(reg.nearest(Point::new(400.0, 301.0)), Some((v, 1.0)));
    }

    #[test]
    fn scratch_query_matches_owned_and_reuses_buffer() {
        let mut reg = NodeRegistry::with_capacity(500.0, 12);
        for i in 0..10u32 {
            reg.add_vehicle(VehicleId(i), Point::new(i as f64 * 60.0, 0.0));
        }
        reg.add_rsu(RsuId(0), Point::new(0.0, 100.0));
        let mut scratch = Vec::new();
        for probe in [Point::ORIGIN, Point::new(300.0, 0.0)] {
            for except in [None, Some(NodeId(3))] {
                reg.nodes_within_into(probe, 200.0, except, &mut scratch);
                assert_eq!(scratch, reg.nodes_within(probe, 200.0, except));
            }
        }
        reg.nodes_within_into(Point::new(1e7, 1e7), 10.0, None, &mut scratch);
        assert!(scratch.is_empty());
    }

    #[test]
    fn bulk_vehicle_moves_match_set_pos() {
        let build = || {
            let mut reg = NodeRegistry::with_capacity(50.0, 6);
            for i in 0..5u32 {
                reg.add_vehicle(VehicleId(i), Point::new(i as f64 * 10.0, 0.0));
            }
            reg.add_rsu(RsuId(0), Point::new(0.0, 100.0));
            reg
        };
        let mut a = build();
        let mut b = build();
        let moves: Vec<(VehicleId, Point)> = (0..5u32)
            .map(|i| {
                (
                    VehicleId(i),
                    Point::new(i as f64 * 10.0 + 3.0, 60.0 * (i % 2) as f64),
                )
            })
            .collect();
        for &(v, p) in &moves {
            let n = a.node_of_vehicle(v);
            a.set_pos(n, p);
        }
        let stats = b.apply_vehicle_moves(moves.iter().copied());
        assert_eq!(stats.crossed + stats.in_place, 5);
        for i in 0..6u32 {
            assert_eq!(a.pos(NodeId(i)), b.pos(NodeId(i)));
        }
        for probe in [Point::ORIGIN, Point::new(25.0, 60.0)] {
            assert_eq!(
                a.nodes_within(probe, 80.0, None),
                b.nodes_within(probe, 80.0, None)
            );
        }
    }

    #[test]
    #[should_panic(expected = "id order")]
    fn out_of_order_vehicle_rejected() {
        let mut reg = NodeRegistry::new(500.0);
        reg.add_vehicle(VehicleId(1), Point::ORIGIN);
    }
}
