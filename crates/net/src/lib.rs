//! # vanet-net — wireless and wired network simulation (ns-2 substitute)
//!
//! Everything between "protocol decides to send" and "payload arrives somewhere":
//!
//! * [`NodeRegistry`] — vehicles and RSUs in one id space with a spatial index.
//! * [`RadioConfig`] — 500 m unit-disk radio with edge fade, per-hop delays, MAC
//!   backoff slots, and unicast retries.
//! * [`gpsr`] — greedy + right-hand-recovery geographic routing (the paper's
//!   assumed routing protocol).
//! * [`flood`] — directional corridor broadcast (HLSRG's stale-target search) and
//!   region flooding.
//! * [`WiredNetwork`] — the RSU backbone with shortest-hop transfers.
//! * [`NetworkCore`] — the façade: emission-based send primitives plus per-class
//!   transmission counters that the paper's figures are computed from.

#![warn(missing_docs)]

pub mod core;
pub mod counters;
pub mod flood;
pub mod gpsr;
pub mod node;
pub mod radio;
pub mod service;
pub mod sync;
pub mod wired;

pub use crate::core::{Emission, NetworkCore, Transport};
pub use counters::{DropKind, NetCounters, PacketClass};
pub use flood::{directional_broadcast, region_broadcast, FloodResult, FloodScratch};
pub use gpsr::{
    gpsr_step, gpsr_step_scratch, GpsrFailure, GpsrHeader, GpsrMode, GpsrScratch, GpsrStep,
    GpsrTarget,
};
pub use node::{NodeId, NodeKind, NodeRegistry};
pub use radio::RadioConfig;
pub use service::{deliveries, Effect, LocationService, QueryId, QueryLog, QueryRecord};
pub use sync::{conservative_lookahead, LookaheadError};
pub use vanet_trace::{TraceEvent, Tracer};
pub use wired::WiredNetwork;

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_geo::Point;
    use vanet_mobility::VehicleId;

    /// Builds a registry from a connected chain of random-ish offsets so GPSR
    /// always has a geometric path.
    fn chain_registry(offsets: &[(f64, f64)]) -> NodeRegistry {
        let mut reg = NodeRegistry::new(500.0);
        let mut p = Point::ORIGIN;
        reg.add_vehicle(VehicleId(0), p);
        for (i, &(dx, dy)) in offsets.iter().enumerate() {
            p += vanet_geo::Vec2::new(dx, dy);
            reg.add_vehicle(VehicleId(i as u32 + 1), p);
        }
        reg
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// On a chain where consecutive nodes are within range, GPSR (greedy +
        /// recovery) delivers end-to-end within TTL.
        #[test]
        fn gpsr_delivers_on_connected_chains(
            offsets in proptest::collection::vec((50.0f64..350.0, -200.0f64..200.0), 1..30)
        ) {
            let reg = chain_registry(&offsets);
            let last = NodeId(offsets.len() as u32);
            let mut cur = NodeId(0);
            let mut header = GpsrHeader::new(GpsrTarget::Node(last), reg.pos(last));
            let mut hops = 0;
            loop {
                match gpsr_step(&reg, 500.0, cur, header) {
                    GpsrStep::Arrived => break,
                    GpsrStep::Forward { next, header: h } => {
                        cur = next;
                        header = h;
                        hops += 1;
                        prop_assert!(hops <= 200, "routing loop");
                    }
                    GpsrStep::Fail(f) => {
                        return Err(TestCaseError::fail(format!("failed: {f:?} at {cur}")));
                    }
                }
            }
        }

        /// Every GPSR hop spans at most the radio range.
        #[test]
        fn gpsr_hops_within_range(
            offsets in proptest::collection::vec((50.0f64..350.0, -200.0f64..200.0), 1..20)
        ) {
            let reg = chain_registry(&offsets);
            let last = NodeId(offsets.len() as u32);
            let mut cur = NodeId(0);
            let mut header = GpsrHeader::new(GpsrTarget::Node(last), reg.pos(last));
            loop {
                match gpsr_step(&reg, 500.0, cur, header) {
                    GpsrStep::Arrived => break,
                    GpsrStep::Forward { next, header: h } => {
                        prop_assert!(reg.pos(cur).distance(reg.pos(next)) < 500.0 + 1e-9);
                        cur = next;
                        header = h;
                    }
                    GpsrStep::Fail(_) => break,
                }
            }
        }

        /// Region broadcast never reaches outside the region and reaches exactly the
        /// connected component of the origin (with lossless links).
        #[test]
        fn region_flood_exact_component(
            pts in proptest::collection::vec((0.0f64..1500.0, 0.0f64..1500.0), 1..40),
        ) {
            let mut reg = NodeRegistry::new(500.0);
            reg.add_vehicle(VehicleId(0), Point::new(750.0, 750.0));
            for (i, &(x, y)) in pts.iter().enumerate() {
                reg.add_vehicle(VehicleId(i as u32 + 1), Point::new(x, y));
            }
            let region = vanet_geo::BBox::new(0.0, 0.0, 1500.0, 1500.0);
            let radio = RadioConfig { reliable_fraction: 1.0, edge_delivery: 1.0, ..Default::default() };
            let mut rng = SmallRng::seed_from_u64(0);
            let res = region_broadcast(
                &reg,
                &radio,
                NodeId(0),
                &region,
                64,
                &mut rng,
                &mut FloodScratch::default(),
            );

            // Brute-force connected component over the unit-disk graph.
            let n = pts.len() + 1;
            let mut reach = vec![false; n];
            reach[0] = true;
            let mut changed = true;
            #[allow(clippy::needless_range_loop)] // a and b index two roles in reach
            while changed {
                changed = false;
                for a in 0..n {
                    if !reach[a] { continue; }
                    for b in 0..n {
                        if !reach[b]
                            && reg.pos(NodeId(a as u32)).distance(reg.pos(NodeId(b as u32))) < 500.0
                        {
                            reach[b] = true;
                            changed = true;
                        }
                    }
                }
            }
            let mut expected: Vec<u32> = (1..n as u32).filter(|&i| reach[i as usize]).collect();
            expected.sort_unstable();
            let mut got: Vec<u32> = res.deliveries.iter().map(|&(n, _)| n.0).collect();
            got.sort_unstable();
            prop_assert_eq!(got, expected);
        }
    }
}
