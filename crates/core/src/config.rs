//! HLSRG protocol parameters.

use serde::{Deserialize, Serialize};
use vanet_des::SimDuration;

/// On-the-wire packet sizes in bytes, used for serialization delays and realism.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketSizes {
    /// One location update broadcast (id, position, time, direction, grid).
    pub update: usize,
    /// Fixed part of a table transfer.
    pub table_base: usize,
    /// Per-entry increment of a table transfer.
    pub table_entry: usize,
    /// A location request.
    pub request: usize,
    /// A notification searching for the destination.
    pub notify: usize,
    /// The destination's ACK back to the source.
    pub ack: usize,
    /// One application data packet (post-discovery GPSR traffic).
    pub data: usize,
}

impl Default for PacketSizes {
    fn default() -> Self {
        PacketSizes {
            update: 64,
            table_base: 32,
            table_entry: 16,
            request: 128,
            notify: 96,
            ack: 32,
            data: 512,
        }
    }
}

impl PacketSizes {
    /// Size of a table transfer with `entries` rows.
    pub fn table(&self, entries: usize) -> usize {
        self.table_base + self.table_entry * entries
    }
}

/// How L1 grid tables reach the L2 RSU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum CollectionMode {
    /// The paper's mechanism: a custodian leaving the grid-center intersection
    /// hands the table off (one-hop broadcast at the intersection) and forwards
    /// it to the L2 RSU — throttled to departures that actually carry new
    /// entries.
    #[default]
    OnDeparture,
    /// Deterministic approximation: push every `collection_period`.
    Periodic,
}

/// All tunables of the HLSRG protocol (paper §2 values as defaults).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HlsrgConfig {
    /// Radius around a grid-center intersection within which a vehicle acts as a
    /// custodian/location server for that grid.
    pub center_radius: f64,
    /// L1 table entry lifetime. The paper specifies 2.2 minutes *as a proxy for
    /// ~1000 m of driving* at free-flow speed; with signalized stop-and-go traffic
    /// the same distance takes twice as long, so the default is distance-calibrated
    /// to 4.4 minutes.
    pub l1_ttl: SimDuration,
    /// L2 table entry lifetime — also 2.2 minutes.
    pub l2_ttl: SimDuration,
    /// L3 table entry lifetime — the paper's 4.4 minutes (≈2000 m).
    pub l3_ttl: SimDuration,
    /// How L1 tables reach the L2 RSU.
    pub collection_mode: CollectionMode,
    /// Period of the L1-center → L2-RSU push in [`CollectionMode::Periodic`], and
    /// the fallback sweep period in [`CollectionMode::OnDeparture`] (quiet grids
    /// with data but no departures still push eventually).
    pub collection_period: SimDuration,
    /// Period of the L2-RSU → L3-RSU wired table push.
    pub l2_push_period: SimDuration,
    /// Source retry timeout: no ACK within this → go straight to the L3 RSU
    /// (paper: 5 s).
    pub query_timeout: SimDuration,
    /// Deadline for a query to count as successful.
    pub query_deadline: SimDuration,
    /// How far a directional notification chases a stale artery target, meters.
    pub notify_max_dist: f64,
    /// Corridor half-width of the directional broadcast, meters.
    pub lateral_tol: f64,
    /// Backoff slots drawn by custodians that *have* the target's entry (paper:
    /// 0–15 bit times).
    pub backoff_found: (u32, u32),
    /// Backoff slots drawn by custodians that *lack* the entry (paper: 17–31).
    pub backoff_notfound: (u32, u32),
    /// Escalation hop budget for one request (loop protection).
    pub max_escalations: u8,
    /// Which update discipline vehicles follow (ablation knob).
    pub update_policy: crate::update::UpdatePolicy,
    /// Application data packets the source sends the destination via GPSR after a
    /// successful discovery (the traffic the service exists to enable). 0 = off.
    pub data_packets_per_session: u32,
    /// Packet sizes.
    pub sizes: PacketSizes,
}

impl Default for HlsrgConfig {
    fn default() -> Self {
        HlsrgConfig {
            center_radius: 250.0,
            l1_ttl: SimDuration::from_millis(264_000),
            l2_ttl: SimDuration::from_millis(264_000),
            l3_ttl: SimDuration::from_millis(528_000),
            collection_mode: CollectionMode::OnDeparture,
            collection_period: SimDuration::from_secs(10),
            l2_push_period: SimDuration::from_secs(10),
            query_timeout: SimDuration::from_secs(5),
            query_deadline: SimDuration::from_secs(30),
            notify_max_dist: 1200.0,
            lateral_tol: 40.0,
            backoff_found: (0, 15),
            backoff_notfound: (17, 31),
            max_escalations: 6,
            update_policy: crate::update::UpdatePolicy::RoadAdapted,
            data_packets_per_session: 8,
            sizes: PacketSizes::default(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = HlsrgConfig::default();
        // The paper's 2.2 / 4.4 minutes, distance-calibrated (×2) for signalized
        // stop-and-go traffic.
        assert_eq!(c.l1_ttl, SimDuration::from_secs(264));
        assert_eq!(c.l3_ttl, SimDuration::from_secs(528));
        assert_eq!(c.query_timeout, SimDuration::from_secs(5));
        assert_eq!(c.backoff_found, (0, 15));
        assert_eq!(c.backoff_notfound, (17, 31));
    }

    #[test]
    fn table_size_scales() {
        let s = PacketSizes::default();
        assert_eq!(s.table(0), 32);
        assert_eq!(s.table(10), 32 + 160);
    }
}
