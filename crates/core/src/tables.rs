//! Location tables at the three hierarchy levels (paper §2.2.2).
//!
//! Detail shrinks as information flows up, exactly as the paper prescribes:
//!
//! * **L1** (kept by vehicles at the grid-center intersection): full detail —
//!   position, time, direction, road class, grid. Entries expire after 2.2 min.
//! * **L2** (RSU): vehicle id, update time, and *which L1 grid* reported it.
//!   Expire after 2.2 min.
//! * **L3** (RSU): vehicle id, update time, and *which L2 RSU* reported it.
//!   Expire after 4.4 min.

use fxhash::FxHashMap;
use serde::{Deserialize, Serialize};
use vanet_des::{SimDuration, SimTime};
use vanet_geo::{Heading, Point};
use vanet_mobility::VehicleId;
use vanet_roadnet::{L1Id, L2Id, RoadClass, RoadId};

/// Full-detail entry stored at a Level-1 grid center.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct L1Entry {
    /// Reported position.
    pub pos: Point,
    /// Time of the update.
    pub time: SimTime,
    /// Direction of travel when the update was sent — the key to the directional
    /// geo-broadcast search.
    pub heading: Heading,
    /// Road driven when the update was sent.
    pub road: RoadId,
    /// Whether that road was a main artery.
    pub road_class: RoadClass,
    /// The L1 grid the update was addressed to.
    pub l1: L1Id,
}

/// Reduced entry at an upper level: when, and who reported (an L1 grid for L2
/// tables, an L2 grid for L3 tables).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct UpEntry<G> {
    /// Time of the underlying update.
    pub time: SimTime,
    /// Reporting lower-level grid.
    pub from: G,
}

/// A TTL-pruned location table keyed by vehicle.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LocationTable<E> {
    entries: FxHashMap<VehicleId, E>,
    ttl: SimDuration,
}

/// Entry types that expose their update time for TTL pruning and freshness wins.
pub trait Timestamped {
    /// Time of the underlying location update.
    fn time(&self) -> SimTime;
}

impl Timestamped for L1Entry {
    fn time(&self) -> SimTime {
        self.time
    }
}

impl<G> Timestamped for UpEntry<G> {
    fn time(&self) -> SimTime {
        self.time
    }
}

impl<E: Timestamped + Clone> LocationTable<E> {
    /// Creates an empty table whose entries live for `ttl`.
    pub fn new(ttl: SimDuration) -> Self {
        Self::with_capacity(ttl, 0)
    }

    /// [`new`](Self::new) pre-sized for `vehicles` entries, so a table that
    /// eventually tracks the whole fleet never rehashes while filling.
    pub fn with_capacity(ttl: SimDuration, vehicles: usize) -> Self {
        LocationTable {
            entries: fxhash::map_with_capacity(vehicles),
            ttl,
        }
    }

    /// Reserves room for at least `additional` more entries.
    pub fn reserve(&mut self, additional: usize) {
        self.entries.reserve(additional);
    }

    /// Inserts or refreshes an entry; an older update never overwrites a newer one.
    pub fn record(&mut self, v: VehicleId, entry: E) {
        match self.entries.get(&v) {
            Some(cur) if cur.time() > entry.time() => {}
            _ => {
                self.entries.insert(v, entry);
            }
        }
    }

    /// Removes a vehicle's entry (the "old grid deletes it" rule).
    pub fn remove(&mut self, v: VehicleId) -> Option<E> {
        self.entries.remove(&v)
    }

    /// Drops every entry older than the TTL as of `now`.
    pub fn prune(&mut self, now: SimTime) {
        let ttl = self.ttl;
        self.entries
            .retain(|_, e| now.saturating_since(e.time()) <= ttl);
    }

    /// Fresh lookup: prunes, then reads.
    pub fn lookup(&mut self, v: VehicleId, now: SimTime) -> Option<E> {
        if let Some(e) = self.entries.get(&v) {
            if now.saturating_since(e.time()) <= self.ttl {
                return Some(e.clone());
            }
            self.entries.remove(&v);
        }
        None
    }

    /// Non-pruning read (tests, diagnostics).
    pub fn peek(&self, v: VehicleId) -> Option<&E> {
        self.entries.get(&v)
    }

    /// Number of live entries (may include expired ones until the next prune).
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if the table has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates over entries in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (VehicleId, &E)> + '_ {
        self.entries.iter().map(|(&v, e)| (v, e))
    }

    /// Snapshot of `(vehicle, time)` rows sorted by vehicle id — the summary an
    /// upper level receives.
    pub fn summary(&self) -> Vec<(VehicleId, SimTime)> {
        let mut rows: Vec<_> = self.entries.iter().map(|(&v, e)| (v, e.time())).collect();
        rows.sort_by_key(|&(v, _)| v);
        rows
    }
}

/// Level-1 table.
pub type L1Table = LocationTable<L1Entry>;
/// Level-2 table: which L1 grid reported each vehicle.
pub type L2Table = LocationTable<UpEntry<L1Id>>;
/// Level-3 table: which L2 grid reported each vehicle.
pub type L3Table = LocationTable<UpEntry<L2Id>>;

#[cfg(test)]
mod tests {
    use super::*;
    use vanet_geo::Cardinal;

    fn entry(t: u64) -> L1Entry {
        L1Entry {
            pos: Point::new(1.0, 2.0),
            time: SimTime::from_secs(t),
            heading: Cardinal::East.into(),
            road: RoadId(0),
            road_class: RoadClass::Artery,
            l1: L1Id(0),
        }
    }

    #[test]
    fn record_and_lookup() {
        let mut t = L1Table::new(SimDuration::from_secs(132));
        t.record(VehicleId(1), entry(10));
        assert!(t.lookup(VehicleId(1), SimTime::from_secs(20)).is_some());
        assert!(t.lookup(VehicleId(2), SimTime::from_secs(20)).is_none());
    }

    #[test]
    fn ttl_expires_entries() {
        let mut t = L1Table::new(SimDuration::from_secs(132));
        t.record(VehicleId(1), entry(0));
        assert!(t.lookup(VehicleId(1), SimTime::from_secs(132)).is_some());
        assert!(t.lookup(VehicleId(1), SimTime::from_secs(133)).is_none());
        // Expired lookup also evicted the entry.
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn prune_sweeps_all_expired() {
        let mut t = L2Table::new(SimDuration::from_secs(132));
        t.record(
            VehicleId(1),
            UpEntry {
                time: SimTime::from_secs(0),
                from: L1Id(0),
            },
        );
        t.record(
            VehicleId(2),
            UpEntry {
                time: SimTime::from_secs(100),
                from: L1Id(1),
            },
        );
        t.prune(SimTime::from_secs(140));
        assert_eq!(t.len(), 1);
        assert!(t.peek(VehicleId(2)).is_some());
    }

    #[test]
    fn newer_entry_wins_regardless_of_arrival_order() {
        let mut t = L1Table::new(SimDuration::from_secs(132));
        t.record(VehicleId(1), entry(50));
        t.record(VehicleId(1), entry(10)); // stale duplicate arriving late
        assert_eq!(t.peek(VehicleId(1)).unwrap().time, SimTime::from_secs(50));
        t.record(VehicleId(1), entry(60));
        assert_eq!(t.peek(VehicleId(1)).unwrap().time, SimTime::from_secs(60));
    }

    #[test]
    fn remove_models_old_grid_deletion() {
        let mut t = L1Table::new(SimDuration::from_secs(132));
        t.record(VehicleId(7), entry(5));
        assert!(t.remove(VehicleId(7)).is_some());
        assert!(t.remove(VehicleId(7)).is_none());
        assert!(t.is_empty());
    }

    #[test]
    fn summary_is_sorted_and_reduced() {
        let mut t = L1Table::new(SimDuration::from_secs(132));
        t.record(VehicleId(9), entry(1));
        t.record(VehicleId(3), entry(2));
        let s = t.summary();
        assert_eq!(
            s,
            vec![
                (VehicleId(3), SimTime::from_secs(2)),
                (VehicleId(9), SimTime::from_secs(1))
            ]
        );
    }
}
