//! The HLSRG protocol state machine.
//!
//! One `HlsrgProtocol` instance embodies the whole distributed protocol: the logical
//! L1/L2/L3 tables (physically replicated among grid-center custodians and RSUs),
//! the update rules, the collection pipeline, and query resolution. Physical
//! realism — who actually hears a broadcast, radio loss, GPSR paths, wired
//! latency — lives in [`NetworkCore`]; this module only reacts to deliveries.

use crate::config::HlsrgConfig;
use crate::messages::{
    HlsrgPayload, HlsrgTimer, NotifyPacket, NotifySource, RequestPacket, RequestStage, UpdatePacket,
};
use crate::tables::{L1Entry, L1Table, L2Table, L3Table, UpEntry};
use crate::update::{update_trigger_with_policy, UpdateReason};
use rand::rngs::SmallRng;
use rand::RngExt;
use std::sync::Arc;
use vanet_des::{SimDuration, SimTime};
use vanet_geo::Point;
use vanet_mobility::{MoveSample, VehicleId};
use vanet_net::{
    deliveries, Effect, GpsrTarget, LocationService, NetworkCore, NodeId, NodeKind, PacketClass,
    QueryId, QueryLog, TraceEvent,
};
use vanet_roadnet::{L1Id, L2Id, L3Id, Partition, RoadNetwork};

type Fx = Vec<Effect<HlsrgPayload, HlsrgTimer>>;

/// The HLSRG location service.
#[derive(Debug)]
pub struct HlsrgProtocol {
    cfg: HlsrgConfig,
    partition: Arc<Partition>,
    /// Position of each L1 grid's center intersection, indexed by `L1Id`.
    l1_center_pos: Vec<Point>,
    l1_tables: Vec<L1Table>,
    l2_tables: Vec<L2Table>,
    l3_tables: Vec<L3Table>,
    log: QueryLog,
    rng: SmallRng,
    /// Time of the last collection push per L1 grid (departure-push throttle);
    /// `None` = never pushed.
    last_push: Vec<Option<SimTime>>,
    /// Updates triggered per [`UpdateReason`] (diagnostics / ablations).
    reason_counts: [u64; 4],
    /// Query-path stage counters (diagnostics).
    stats: PathStats,
}

/// Counters over the query resolution pipeline, for diagnostics and tests.
#[derive(Debug, Clone, Copy, Default)]
pub struct PathStats {
    /// Requests processed at an L1 center that found the target.
    pub l1_hits: u64,
    /// Requests processed at an L1 center that missed.
    pub l1_misses: u64,
    /// Requests processed at an L2 RSU that found the target.
    pub l2_hits: u64,
    /// Requests processed at an L2 RSU that missed.
    pub l2_misses: u64,
    /// Requests processed at an L3 RSU that found the target.
    pub l3_hits: u64,
    /// Requests processed at an L3 RSU that missed.
    pub l3_misses: u64,
    /// Directional notifications broadcast.
    pub notify_directional: u64,
    /// Region notifications broadcast.
    pub notify_region: u64,
    /// ACKs sent by destinations.
    pub acks_sent: u64,
    /// Post-discovery data packets delivered to their destination.
    pub data_delivered: u64,
}

impl HlsrgProtocol {
    /// Builds the protocol for a map. `rng` should be the protocol/backoff stream.
    pub fn new(
        net: &RoadNetwork,
        partition: Arc<Partition>,
        cfg: HlsrgConfig,
        rng: SmallRng,
    ) -> Self {
        let l1_center_pos = (0..partition.l1_count() as u32)
            .map(|i| net.pos(partition.l1_center(L1Id(i))))
            .collect();
        let partition_l1_count = partition.l1_count();
        let l1_tables = (0..partition.l1_count())
            .map(|_| L1Table::new(cfg.l1_ttl))
            .collect();
        let l2_tables = (0..partition.l2_count())
            .map(|_| L2Table::new(cfg.l2_ttl))
            .collect();
        let l3_tables = (0..partition.l3_count())
            .map(|_| L3Table::new(cfg.l3_ttl))
            .collect();
        HlsrgProtocol {
            cfg,
            partition,
            l1_center_pos,
            l1_tables,
            l2_tables,
            l3_tables,
            log: QueryLog::new(),
            rng,
            last_push: vec![None; partition_l1_count],
            reason_counts: [0; 4],
            stats: PathStats::default(),
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &HlsrgConfig {
        &self.cfg
    }

    /// Pre-sizes every location table for a fleet of `n` vehicles. Entries
    /// spread across the tables of each level, so each table reserves a
    /// per-region share (with slack for uneven density) rather than the full
    /// fleet.
    pub fn reserve_vehicles(&mut self, n: usize) {
        let share = |tables: usize| 2 * n.div_ceil(tables.max(1)) + 8;
        let l1 = share(self.l1_tables.len());
        for t in &mut self.l1_tables {
            t.reserve(l1);
        }
        let l2 = share(self.l2_tables.len());
        for t in &mut self.l2_tables {
            t.reserve(l2);
        }
        let l3 = share(self.l3_tables.len());
        for t in &mut self.l3_tables {
            t.reserve(l3);
        }
    }

    /// Update counts per reason, in [`UpdateReason`] declaration order.
    pub fn reason_counts(&self) -> [u64; 4] {
        self.reason_counts
    }

    /// Live-entry count of an L1 table (diagnostics).
    pub fn l1_table_len(&self, l1: L1Id) -> usize {
        self.l1_tables[l1.0 as usize].len()
    }

    /// Live-entry count of an L2 table (diagnostics).
    pub fn l2_table_len(&self, l2: L2Id) -> usize {
        self.l2_tables[l2.0 as usize].len()
    }

    /// Live-entry count of an L3 table (diagnostics).
    pub fn l3_table_len(&self, l3: L3Id) -> usize {
        self.l3_tables[l3.0 as usize].len()
    }

    fn reason_ix(r: UpdateReason) -> usize {
        match r {
            UpdateReason::ArteryTurn => 0,
            UpdateReason::ArteryL3Crossing => 1,
            UpdateReason::NormalTurnOntoArtery => 2,
            UpdateReason::NormalBoundaryCrossing => 3,
        }
    }

    /// A vehicle that can act for the center of `l1` right now: preferably one in
    /// the custodian zone around the center intersection, else any vehicle in the
    /// grid (it carries the grid's table as it passes through).
    fn find_custodian(&self, core: &NetworkCore, l1: L1Id) -> Option<NodeId> {
        let center = self.l1_center_pos[l1.0 as usize];
        let near = core
            .registry
            .nodes_within(center, self.cfg.center_radius, None)
            .into_iter()
            .find(|&n| matches!(core.registry.kind(n), NodeKind::Vehicle(_)));
        near.or_else(|| {
            // Half-diagonal of the square grid: covers the whole cell.
            let r = self.partition.l1_size() * std::f64::consts::FRAC_1_SQRT_2 + 1.0;
            core.registry
                .nodes_within(center, r, None)
                .into_iter()
                .find(|&n| {
                    matches!(core.registry.kind(n), NodeKind::Vehicle(_))
                        && self.partition.l1_of(core.registry.pos(n)) == l1
                })
        })
    }

    fn backoff_delay(&mut self, core: &NetworkCore, band: (u32, u32)) -> SimDuration {
        let slots = self.rng.random_range(band.0..=band.1);
        core.radio.backoff(slots)
    }

    // ---- update path ----

    /// Broadcasts one location update for the vehicle described by `s`.
    fn send_update(&mut self, core: &mut NetworkCore, s: &MoveSample, now: SimTime) -> Fx {
        let node = core.registry.node_of_vehicle(s.id);
        let packet = UpdatePacket {
            vehicle: s.id,
            pos: s.new_pos,
            time: now,
            heading: s.heading,
            road: s.road,
            road_class: s.road_class,
            l1: self.partition.l1_of(s.new_pos),
        };
        deliveries(core.broadcast_onehop(
            node,
            PacketClass::Update,
            self.cfg.sizes.update,
            HlsrgPayload::Update(packet),
        ))
    }

    fn handle_update(&mut self, core: &mut NetworkCore, at: NodeId, u: UpdatePacket) -> Fx {
        // Every vehicle in a grid is a prospective location server (it will pass
        // the center intersection); a receiver in the update's own grid records
        // the entry into the grid's table, while a receiver in any *other* grid
        // deletes the vehicle from its grid's table (the paper's "old grid" rule).
        if let NodeKind::Vehicle(_) = core.registry.kind(at) {
            let g = self.partition.l1_of(core.registry.pos(at));
            let table = &mut self.l1_tables[g.0 as usize];
            if g == u.l1 {
                table.record(
                    u.vehicle,
                    L1Entry {
                        pos: u.pos,
                        time: u.time,
                        heading: u.heading,
                        road: u.road,
                        road_class: u.road_class,
                        l1: u.l1,
                    },
                );
            } else {
                table.remove(u.vehicle);
            }
        }
        Vec::new()
    }

    // ---- collection pipeline ----

    /// Pushes grid `l1`'s table to its L2 RSU from `server`. Assumes the table
    /// was pruned and is non-empty.
    fn push_l1_table(
        &mut self,
        core: &mut NetworkCore,
        l1: L1Id,
        server: NodeId,
        now: SimTime,
    ) -> Fx {
        let rows = self.l1_tables[l1.0 as usize].summary();
        let size = self.cfg.sizes.table(rows.len());
        let l2 = self.partition.l1_to_l2(l1);
        let rsu = self.partition.rsu_of_l2(l2);
        let rsu_node = core.registry.node_of_rsu(rsu);
        let rsu_pos = core.registry.pos(rsu_node);
        self.last_push[l1.0 as usize] = Some(now);
        deliveries(core.send_gpsr(
            server,
            GpsrTarget::Node(rsu_node),
            rsu_pos,
            PacketClass::Collection,
            size,
            HlsrgPayload::TableToL2 {
                l2,
                from_l1: l1,
                rows,
            },
        ))
    }

    /// True if the grid's table holds entries newer than its last push.
    fn has_unpushed_entries(&self, l1: L1Id) -> bool {
        match self.last_push[l1.0 as usize] {
            None => !self.l1_tables[l1.0 as usize].is_empty(),
            Some(since) => self.l1_tables[l1.0 as usize]
                .iter()
                .any(|(_, e)| e.time > since),
        }
    }

    /// The paper's hand-off: a custodian leaving the center intersection
    /// geo-broadcasts its table in the intersection range (so remaining vehicles
    /// keep serving) and forwards it to the L2 RSU. Throttled to departures that
    /// carry news.
    fn handle_departure(
        &mut self,
        core: &mut NetworkCore,
        l1: L1Id,
        server: NodeId,
        now: SimTime,
    ) -> Fx {
        self.l1_tables[l1.0 as usize].prune(now);
        if self.l1_tables[l1.0 as usize].is_empty() || !self.has_unpushed_entries(l1) {
            return Vec::new();
        }
        // The intersection hand-off broadcast. Within the logical-table model the
        // remaining custodians already share the table; the packet still costs a
        // transmission, which is what the overhead figures count.
        let rows_len = self.l1_tables[l1.0 as usize].len();
        let mut fx = deliveries(core.broadcast_onehop(
            server,
            PacketClass::Collection,
            self.cfg.sizes.table(rows_len),
            HlsrgPayload::TableHandoff { l1 },
        ));
        fx.extend(self.push_l1_table(core, l1, server, now));
        fx
    }

    fn handle_l1_collect(&mut self, core: &mut NetworkCore, l1: L1Id, now: SimTime) -> Fx {
        let mut fx: Fx = vec![Effect::Timer {
            delay: self.cfg.collection_period,
            key: HlsrgTimer::L1Collect { l1 },
        }];
        let table = &mut self.l1_tables[l1.0 as usize];
        table.prune(now);
        if table.is_empty() {
            return fx;
        }
        if self.cfg.collection_mode == crate::config::CollectionMode::OnDeparture
            && !self.has_unpushed_entries(l1)
        {
            // Fallback sweep: only fires for data that departures never carried.
            return fx;
        }
        let Some(server) = self.find_custodian(core, l1) else {
            // Nobody at the intersection right now: the push waits a period.
            return fx;
        };
        let push = self.push_l1_table(core, l1, server, now);
        fx.extend(push);
        fx
    }

    fn handle_l2_push(&mut self, core: &mut NetworkCore, l2: L2Id, now: SimTime) -> Fx {
        let mut fx: Fx = vec![Effect::Timer {
            delay: self.cfg.l2_push_period,
            key: HlsrgTimer::L2Push { l2 },
        }];
        let table = &mut self.l2_tables[l2.0 as usize];
        table.prune(now);
        if table.is_empty() {
            return fx;
        }
        let rows = table.summary();
        let size = self.cfg.sizes.table(rows.len());
        let l3 = self.partition.l2_to_l3(l2);
        let emissions = core.send_wired(
            self.partition.rsu_of_l2(l2),
            self.partition.rsu_of_l3(l3),
            PacketClass::Collection,
            size,
            HlsrgPayload::TableToL3 {
                l3,
                from_l2: l2,
                rows,
            },
        );
        fx.extend(deliveries(emissions));
        fx
    }

    fn merge_into_l2(&mut self, l2: L2Id, from_l1: L1Id, rows: &[(VehicleId, SimTime)]) {
        let table = &mut self.l2_tables[l2.0 as usize];
        for &(v, t) in rows {
            table.record(
                v,
                UpEntry {
                    time: t,
                    from: from_l1,
                },
            );
        }
    }

    // ---- query path ----

    /// Sends `request` from `from` toward whatever its stage addresses.
    fn dispatch_request(
        &mut self,
        core: &mut NetworkCore,
        from: NodeId,
        request: RequestPacket,
    ) -> Fx {
        let size = self.cfg.sizes.request
            + request
                .attach
                .as_ref()
                .map_or(0, |(_, rows)| self.cfg.sizes.table_entry * rows.len());
        match request.stage {
            RequestStage::L1 { l1, .. } => {
                let center = self.l1_center_pos[l1.0 as usize];
                deliveries(core.send_gpsr(
                    from,
                    GpsrTarget::AnyAt {
                        radius: self.cfg.center_radius,
                    },
                    center,
                    PacketClass::Query,
                    size,
                    HlsrgPayload::Request(request),
                ))
            }
            RequestStage::L2 { l2, .. } => {
                let rsu_node = core.registry.node_of_rsu(self.partition.rsu_of_l2(l2));
                let pos = core.registry.pos(rsu_node);
                deliveries(core.send_gpsr(
                    from,
                    GpsrTarget::Node(rsu_node),
                    pos,
                    PacketClass::Query,
                    size,
                    HlsrgPayload::Request(request),
                ))
            }
            RequestStage::L3 { l3, .. } => {
                let rsu_node = core.registry.node_of_rsu(self.partition.rsu_of_l3(l3));
                let pos = core.registry.pos(rsu_node);
                deliveries(core.send_gpsr(
                    from,
                    GpsrTarget::Node(rsu_node),
                    pos,
                    PacketClass::Query,
                    size,
                    HlsrgPayload::Request(request),
                ))
            }
        }
    }

    /// Wired forwarding between RSUs (L2/L3 stages only).
    fn forward_wired(
        &mut self,
        core: &mut NetworkCore,
        from_rsu: vanet_roadnet::RsuId,
        to_rsu: vanet_roadnet::RsuId,
        request: RequestPacket,
    ) -> Fx {
        deliveries(core.send_wired(
            from_rsu,
            to_rsu,
            PacketClass::Query,
            self.cfg.sizes.request,
            HlsrgPayload::Request(request),
        ))
    }

    fn handle_request(
        &mut self,
        core: &mut NetworkCore,
        at: NodeId,
        mut req: RequestPacket,
        now: SimTime,
    ) -> Fx {
        if self.log.is_complete(req.query) {
            return Vec::new(); // answered while this copy was in flight
        }
        if req.budget == 0 {
            return Vec::new(); // loop protection: let the source's timeout recover
        }
        match req.stage {
            RequestStage::L1 { l1, from_l2 } => {
                let entry = self.l1_tables[l1.0 as usize].lookup(req.dst, now);
                match entry {
                    Some(e) => {
                        self.stats.l1_hits += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 1,
                            hit: true,
                        });
                        // Election: holders back off 0–15 slots; the winner serves.
                        let delay = self.backoff_delay(core, self.cfg.backoff_found);
                        vec![Effect::Timer {
                            delay,
                            key: HlsrgTimer::ServeNotify {
                                query: req.query,
                                server: at,
                                source: NotifySource {
                                    pos: e.pos,
                                    heading: e.heading,
                                    road_class: e.road_class,
                                    l1: e.l1,
                                },
                                src: req.src,
                                dst: req.dst,
                            },
                        }]
                    }
                    None => {
                        self.stats.l1_misses += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 1,
                            hit: false,
                        });
                        core.trace(|t| TraceEvent::RouteDecision {
                            t,
                            query: req.query.0,
                            from_level: 1,
                            to_level: if from_l2 { 3 } else { 2 },
                        });
                        // Nobody here knows: back off 17–31 slots, then escalate
                        // with our table attached. A request already routed down by
                        // L2 goes straight to L3 instead of ping-ponging.
                        let delay = self.backoff_delay(core, self.cfg.backoff_notfound);
                        req.budget -= 1;
                        if from_l2 {
                            let l3 = self.partition.l2_to_l3(self.partition.l1_to_l2(l1));
                            req.stage = RequestStage::L3 { l3, from_l3: false };
                        } else {
                            self.l1_tables[l1.0 as usize].prune(now);
                            req.attach = Some((l1, self.l1_tables[l1.0 as usize].summary()));
                            req.stage = RequestStage::L2 {
                                l2: self.partition.l1_to_l2(l1),
                                from_l3: false,
                            };
                        }
                        vec![Effect::Timer {
                            delay,
                            key: HlsrgTimer::Escalate {
                                server: at,
                                request: req,
                            },
                        }]
                    }
                }
            }
            RequestStage::L2 { l2, from_l3 } => {
                if let Some((from_l1, rows)) = req.attach.take() {
                    self.merge_into_l2(l2, from_l1, &rows);
                }
                match self.l2_tables[l2.0 as usize].lookup(req.dst, now) {
                    Some(UpEntry { from: l1, .. }) => {
                        self.stats.l2_hits += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 2,
                            hit: true,
                        });
                        core.trace(|t| TraceEvent::RouteDecision {
                            t,
                            query: req.query.0,
                            from_level: 2,
                            to_level: 1,
                        });
                        req.budget -= 1;
                        req.stage = RequestStage::L1 { l1, from_l2: true };
                        self.dispatch_request(core, at, req)
                    }
                    None if from_l3 => {
                        // The L3 pointer was already stale: everything below has
                        // forgotten this vehicle. Bouncing back up would just
                        // ping-pong; let the source's timeout recover.
                        self.stats.l2_misses += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 2,
                            hit: false,
                        });
                        Vec::new()
                    }
                    None => {
                        self.stats.l2_misses += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 2,
                            hit: false,
                        });
                        core.trace(|t| TraceEvent::RouteDecision {
                            t,
                            query: req.query.0,
                            from_level: 2,
                            to_level: 3,
                        });
                        req.budget -= 1;
                        let l3 = self.partition.l2_to_l3(l2);
                        req.stage = RequestStage::L3 { l3, from_l3: false };
                        self.forward_wired(
                            core,
                            self.partition.rsu_of_l2(l2),
                            self.partition.rsu_of_l3(l3),
                            req,
                        )
                    }
                }
            }
            RequestStage::L3 { l3, from_l3 } => {
                match self.l3_tables[l3.0 as usize].lookup(req.dst, now) {
                    Some(UpEntry { from: l2, .. }) => {
                        self.stats.l3_hits += 1;
                        req.budget -= 1;
                        let parent = self.partition.l2_to_l3(l2);
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 3,
                            hit: true,
                        });
                        core.trace(|t| TraceEvent::RouteDecision {
                            t,
                            query: req.query.0,
                            from_level: 3,
                            to_level: if parent == l3 { 2 } else { 3 },
                        });
                        if parent == l3 {
                            req.stage = RequestStage::L2 { l2, from_l3: true };
                            self.forward_wired(
                                core,
                                self.partition.rsu_of_l3(l3),
                                self.partition.rsu_of_l2(l2),
                                req,
                            )
                        } else {
                            req.stage = RequestStage::L3 {
                                l3: parent,
                                from_l3: true,
                            };
                            self.forward_wired(
                                core,
                                self.partition.rsu_of_l3(l3),
                                self.partition.rsu_of_l3(parent),
                                req,
                            )
                        }
                    }
                    None if from_l3 => {
                        self.stats.l3_misses += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 3,
                            hit: false,
                        });
                        Vec::new() // dead end; the source times out
                    }
                    None => {
                        self.stats.l3_misses += 1;
                        core.trace(|t| TraceEvent::LevelVisit {
                            t,
                            query: req.query.0,
                            level: 3,
                            hit: false,
                        });
                        // The backbone gives every L3 RSU visibility into its
                        // peers: forward to the one holding the freshest entry.
                        let best = (0..self.l3_tables.len())
                            .filter(|&i| i != l3.0 as usize)
                            .filter_map(|i| {
                                self.l3_tables[i]
                                    .lookup(req.dst, now)
                                    .map(|e| (i as u32, e.time))
                            })
                            .max_by_key(|&(i, t)| (t, std::cmp::Reverse(i)));
                        match best {
                            Some((peer, _)) => {
                                req.budget -= 1;
                                core.trace(|t| TraceEvent::RouteDecision {
                                    t,
                                    query: req.query.0,
                                    from_level: 3,
                                    to_level: 3,
                                });
                                req.stage = RequestStage::L3 {
                                    l3: L3Id(peer),
                                    from_l3: true,
                                };
                                self.forward_wired(
                                    core,
                                    self.partition.rsu_of_l3(l3),
                                    self.partition.rsu_of_l3(L3Id(peer)),
                                    req,
                                )
                            }
                            None => Vec::new(),
                        }
                    }
                }
            }
        }
    }

    fn handle_serve_notify(
        &mut self,
        core: &mut NetworkCore,
        query: QueryId,
        server: NodeId,
        source: NotifySource,
        src: VehicleId,
        dst: VehicleId,
    ) -> Fx {
        if self.log.is_complete(query) {
            return Vec::new();
        }
        // The ACK target: the source's position travels in the notification.
        let src_pos = core.registry.pos(core.registry.node_of_vehicle(src));
        let payload = HlsrgPayload::Notify(NotifyPacket {
            query,
            src,
            dst,
            src_pos,
        });
        match source.road_class {
            vanet_roadnet::RoadClass::Artery => self.stats.notify_directional += 1,
            vanet_roadnet::RoadClass::Normal => self.stats.notify_region += 1,
        }
        let directional = source.road_class == vanet_roadnet::RoadClass::Artery;
        core.trace(|t| TraceEvent::NotifyBroadcast {
            t,
            query: query.0,
            directional,
        });
        let emissions = match source.road_class {
            vanet_roadnet::RoadClass::Artery => core.geo_broadcast_directional(
                server,
                source.pos,
                source.heading.unit(),
                self.cfg.notify_max_dist,
                self.cfg.lateral_tol,
                PacketClass::Query,
                self.cfg.sizes.notify,
                payload,
            ),
            vanet_roadnet::RoadClass::Normal => core.geo_broadcast_region(
                server,
                &self.partition.l1_bbox(source.l1),
                PacketClass::Query,
                self.cfg.sizes.notify,
                payload,
            ),
        };
        deliveries(emissions)
    }

    fn handle_timeout(
        &mut self,
        core: &mut NetworkCore,
        query: QueryId,
        src: VehicleId,
        dst: VehicleId,
    ) -> Fx {
        if self.log.is_complete(query) || self.log.get(query).retried {
            return Vec::new();
        }
        self.log.mark_retried(query);
        core.trace(|t| TraceEvent::QueryRetried { t, query: query.0 });
        // Paper: after 5 s without an ACK, send the request straight to the nearest
        // L3 RSU, which has the widest view.
        let src_node = core.registry.node_of_vehicle(src);
        let pos = core.registry.pos(src_node);
        let l3 = self.partition.l3_of(pos);
        core.trace(|t| TraceEvent::RouteDecision {
            t,
            query: query.0,
            from_level: 0,
            to_level: 3,
        });
        let request = RequestPacket {
            query,
            src,
            dst,
            src_pos: pos,
            stage: RequestStage::L3 { l3, from_l3: false },
            budget: self.cfg.max_escalations,
            attach: None,
        };
        self.dispatch_request(core, src_node, request)
    }
}

impl LocationService for HlsrgProtocol {
    type Payload = HlsrgPayload;
    type Timer = HlsrgTimer;

    fn on_start(&mut self, _core: &mut NetworkCore) -> Fx {
        let mut fx = Vec::new();
        // Stagger the periodic pushes so the whole map doesn't collect at once.
        for i in 0..self.partition.l1_count() as u32 {
            let skew = SimDuration::from_millis(97 * (i as u64 + 1));
            fx.push(Effect::Timer {
                delay: self.cfg.collection_period + skew,
                key: HlsrgTimer::L1Collect { l1: L1Id(i) },
            });
        }
        for i in 0..self.partition.l2_count() as u32 {
            let skew = SimDuration::from_millis(131 * (i as u64 + 1));
            fx.push(Effect::Timer {
                delay: self.cfg.l2_push_period + self.cfg.collection_period + skew,
                key: HlsrgTimer::L2Push { l2: L2Id(i) },
            });
        }
        fx
    }

    fn on_join(&mut self, core: &mut NetworkCore, samples: &[MoveSample], now: SimTime) -> Fx {
        // Initial registration: every vehicle announces itself unconditionally.
        let mut fx = Vec::new();
        for s in samples {
            fx.extend(self.send_update(core, s, now));
        }
        fx
    }

    fn on_move(&mut self, core: &mut NetworkCore, samples: &[MoveSample], now: SimTime) -> Fx {
        let mut fx = Vec::new();
        for s in samples {
            if self.cfg.collection_mode == crate::config::CollectionMode::OnDeparture {
                // Departure hand-off: the vehicle was in some grid's center zone
                // and has left it this tick.
                let g_old = self.partition.l1_of(s.old_pos);
                let center = self.l1_center_pos[g_old.0 as usize];
                let was_inside = s.old_pos.distance(center) <= self.cfg.center_radius;
                let now_outside = s.new_pos.distance(center) > self.cfg.center_radius
                    || self.partition.l1_of(s.new_pos) != g_old;
                if was_inside && now_outside {
                    let node = core.registry.node_of_vehicle(s.id);
                    fx.extend(self.handle_departure(core, g_old, node, now));
                }
            }
            let Some(reason) =
                update_trigger_with_policy(&self.partition, self.cfg.update_policy, s)
            else {
                continue;
            };
            self.reason_counts[Self::reason_ix(reason)] += 1;
            core.trace(|t| TraceEvent::UpdateTriggered {
                t,
                vehicle: s.id.0,
                artery: s.road_class == vanet_roadnet::RoadClass::Artery,
                reason: Self::reason_ix(reason) as u8,
            });
            fx.extend(self.send_update(core, s, now));
        }
        fx
    }

    fn on_packet(
        &mut self,
        core: &mut NetworkCore,
        at: NodeId,
        _class: PacketClass,
        payload: HlsrgPayload,
        now: SimTime,
    ) -> Fx {
        match payload {
            HlsrgPayload::Update(u) => self.handle_update(core, at, u),
            // Hand-off broadcasts synchronize custodians; with logical per-grid
            // tables the state is already shared, so receipt is a no-op.
            HlsrgPayload::TableHandoff { .. } => Vec::new(),
            HlsrgPayload::TableToL2 { l2, from_l1, rows } => {
                self.merge_into_l2(l2, from_l1, &rows);
                Vec::new()
            }
            HlsrgPayload::TableToL3 { l3, from_l2, rows } => {
                let table = &mut self.l3_tables[l3.0 as usize];
                for (v, t) in rows {
                    table.record(
                        v,
                        UpEntry {
                            time: t,
                            from: from_l2,
                        },
                    );
                }
                Vec::new()
            }
            HlsrgPayload::Request(req) => self.handle_request(core, at, req, now),
            HlsrgPayload::Notify(n) => {
                if core.registry.kind(at) == NodeKind::Vehicle(n.dst) {
                    self.stats.acks_sent += 1;
                    let src_node = core.registry.node_of_vehicle(n.src);
                    deliveries(core.send_gpsr(
                        at,
                        GpsrTarget::Node(src_node),
                        n.src_pos,
                        PacketClass::Query,
                        self.cfg.sizes.ack,
                        HlsrgPayload::Ack { query: n.query },
                    ))
                } else {
                    Vec::new()
                }
            }
            HlsrgPayload::Ack { query } => {
                let src = self.log.get(query).src;
                if core.registry.kind(at) != NodeKind::Vehicle(src) {
                    return Vec::new();
                }
                let fresh = !self.log.is_complete(query);
                self.log.complete(query, now);
                if fresh {
                    core.trace(|t| TraceEvent::QueryAnswered { t, query: query.0 });
                }
                if !fresh || self.cfg.data_packets_per_session == 0 {
                    return Vec::new();
                }
                // Location in hand: the application traffic the paper's intro
                // motivates now flows over GPSR directly.
                let dst = self.log.get(query).dst;
                let dst_node = core.registry.node_of_vehicle(dst);
                let dst_pos = core.registry.pos(dst_node);
                let mut fx = Vec::new();
                for seq in 0..self.cfg.data_packets_per_session {
                    fx.extend(deliveries(core.send_gpsr(
                        at,
                        GpsrTarget::Node(dst_node),
                        dst_pos,
                        PacketClass::Data,
                        self.cfg.sizes.data,
                        HlsrgPayload::Data {
                            session: query,
                            seq,
                            dst,
                        },
                    )));
                }
                fx
            }
            HlsrgPayload::Data { dst, .. } => {
                if core.registry.kind(at) == NodeKind::Vehicle(dst) {
                    self.stats.data_delivered += 1;
                }
                Vec::new()
            }
        }
    }

    fn on_timer(&mut self, core: &mut NetworkCore, key: HlsrgTimer, now: SimTime) -> Fx {
        match key {
            HlsrgTimer::L1Collect { l1 } => self.handle_l1_collect(core, l1, now),
            HlsrgTimer::L2Push { l2 } => self.handle_l2_push(core, l2, now),
            HlsrgTimer::ServeNotify {
                query,
                server,
                source,
                src,
                dst,
            } => self.handle_serve_notify(core, query, server, source, src, dst),
            HlsrgTimer::Escalate { server, request } => {
                if self.log.is_complete(request.query) {
                    Vec::new()
                } else {
                    self.dispatch_request(core, server, request)
                }
            }
            HlsrgTimer::QueryTimeout { query, src, dst } => {
                self.handle_timeout(core, query, src, dst)
            }
        }
    }

    fn launch_query(
        &mut self,
        core: &mut NetworkCore,
        src: VehicleId,
        dst: VehicleId,
        now: SimTime,
    ) -> Fx {
        let query = self.log.launch(src, dst, now);
        let src_node = core.registry.node_of_vehicle(src);
        let pos = core.registry.pos(src_node);
        // Nearest level center wins: the protocol is distributed when the answer is
        // local and centralized when it isn't.
        let l1 = self.partition.l1_of(pos);
        let l2 = self.partition.l1_to_l2(l1);
        let l3 = self.partition.l2_to_l3(l2);
        let d1 = pos.distance(self.l1_center_pos[l1.0 as usize]);
        let rsu2 = core
            .registry
            .pos(core.registry.node_of_rsu(self.partition.rsu_of_l2(l2)));
        let rsu3 = core
            .registry
            .pos(core.registry.node_of_rsu(self.partition.rsu_of_l3(l3)));
        let (d2, d3) = (pos.distance(rsu2), pos.distance(rsu3));
        let stage = if d1 <= d2 && d1 <= d3 {
            RequestStage::L1 { l1, from_l2: false }
        } else if d2 <= d3 {
            RequestStage::L2 { l2, from_l3: false }
        } else {
            RequestStage::L3 { l3, from_l3: false }
        };
        let level = match stage {
            RequestStage::L1 { .. } => 1,
            RequestStage::L2 { .. } => 2,
            RequestStage::L3 { .. } => 3,
        };
        core.trace(|t| TraceEvent::QueryLaunched {
            t,
            query: query.0,
            src: src.0,
            dst: dst.0,
            level,
        });
        let request = RequestPacket {
            query,
            src,
            dst,
            src_pos: pos,
            stage,
            budget: self.cfg.max_escalations,
            attach: None,
        };
        let mut fx = self.dispatch_request(core, src_node, request);
        fx.push(Effect::Timer {
            delay: self.cfg.query_timeout,
            key: HlsrgTimer::QueryTimeout { query, src, dst },
        });
        fx
    }

    fn query_log(&self) -> &QueryLog {
        &self.log
    }

    fn diagnostics(&self) -> Vec<(&'static str, f64)> {
        let l1_total: usize = self.l1_tables.iter().map(|t| t.len()).sum();
        let l2_total: usize = self.l2_tables.iter().map(|t| t.len()).sum();
        let l3_total: usize = self.l3_tables.iter().map(|t| t.len()).sum();
        vec![
            ("l1_entries", l1_total as f64),
            ("l2_entries", l2_total as f64),
            ("l3_entries", l3_total as f64),
            ("updates_artery_turn", self.reason_counts[0] as f64),
            ("updates_artery_l3", self.reason_counts[1] as f64),
            ("updates_normal_onto_artery", self.reason_counts[2] as f64),
            ("updates_normal_boundary", self.reason_counts[3] as f64),
            ("q_l1_hits", self.stats.l1_hits as f64),
            ("q_l1_misses", self.stats.l1_misses as f64),
            ("q_l2_hits", self.stats.l2_hits as f64),
            ("q_l2_misses", self.stats.l2_misses as f64),
            ("q_l3_hits", self.stats.l3_hits as f64),
            ("q_l3_misses", self.stats.l3_misses as f64),
            ("q_notify_dir", self.stats.notify_directional as f64),
            ("q_notify_region", self.stats.notify_region as f64),
            ("q_acks_sent", self.stats.acks_sent as f64),
            ("data_delivered", self.stats.data_delivered as f64),
        ]
    }

    fn table_sizes(&self) -> [u64; 3] {
        [
            self.l1_tables.iter().map(|t| t.len() as u64).sum(),
            self.l2_tables.iter().map(|t| t.len() as u64).sum(),
            self.l3_tables.iter().map(|t| t.len() as u64).sum(),
        ]
    }

    fn region_entries(&self, out: &mut [u64]) {
        // Every table is homed at a grid whose containing L3 region is fixed
        // by the partition geometry, so per-region load is a pure fold.
        for (i, t) in self.l3_tables.iter().enumerate() {
            if let Some(slot) = out.get_mut(i) {
                *slot += t.len() as u64;
            }
        }
        for (i, t) in self.l2_tables.iter().enumerate() {
            let l3 = self.partition.l2_to_l3(L2Id(i as u32));
            if let Some(slot) = out.get_mut(l3.0 as usize) {
                *slot += t.len() as u64;
            }
        }
        for (i, t) in self.l1_tables.iter().enumerate() {
            let l3 = self
                .partition
                .l2_to_l3(self.partition.l1_to_l2(L1Id(i as u32)));
            if let Some(slot) = out.get_mut(l3.0 as usize) {
                *slot += t.len() as u64;
            }
        }
    }

    /// Location-table soundness (`check` feature): every L1 entry sits in the
    /// table of the grid it was addressed to, its position maps back to that
    /// grid, and it has not drifted beyond the staleness bound of the vehicle's
    /// ground-truth position; upper-level entries carry sane timestamps and
    /// in-range reporter ids.
    #[cfg(feature = "check")]
    fn check_invariants(
        &self,
        core: &NetworkCore,
        now: SimTime,
        max_speed: f64,
        pos_slack: f64,
    ) -> Result<(), String> {
        for (gi, table) in self.l1_tables.iter().enumerate() {
            for (v, e) in table.iter() {
                if e.time > now {
                    return Err(format!("L1[{gi}] entry for {v:?} is from the future"));
                }
                if e.l1 != L1Id(gi as u32) {
                    return Err(format!(
                        "L1[{gi}] stores an entry addressed to {:?} (vehicle {v:?})",
                        e.l1
                    ));
                }
                if self.partition.l1_of(e.pos) != e.l1 {
                    return Err(format!(
                        "L1[{gi}] entry for {v:?} at ({:.1}, {:.1}) maps to {:?}",
                        e.pos.x,
                        e.pos.y,
                        self.partition.l1_of(e.pos)
                    ));
                }
                let truth = core.registry.pos(core.registry.node_of_vehicle(v));
                let age = now.saturating_since(e.time).as_secs_f64();
                let bound = max_speed * age + pos_slack;
                let drift = e.pos.distance(truth);
                if drift > bound {
                    return Err(format!(
                        "L1[{gi}] entry for {v:?} drifted {drift:.1} m from ground truth \
                         (bound {bound:.1} m at age {age:.1} s)"
                    ));
                }
            }
        }
        for (gi, table) in self.l2_tables.iter().enumerate() {
            for (v, e) in table.iter() {
                if e.time > now {
                    return Err(format!("L2[{gi}] entry for {v:?} is from the future"));
                }
                if e.from.0 as usize >= self.partition.l1_count() {
                    return Err(format!(
                        "L2[{gi}] entry for {v:?} reports from unknown L1 {:?}",
                        e.from
                    ));
                }
            }
        }
        for (gi, table) in self.l3_tables.iter().enumerate() {
            for (v, e) in table.iter() {
                if e.time > now {
                    return Err(format!("L3[{gi}] entry for {v:?} is from the future"));
                }
                if e.from.0 as usize >= self.partition.l2_count() {
                    return Err(format!(
                        "L3[{gi}] entry for {v:?} reports from unknown L2 {:?}",
                        e.from
                    ));
                }
            }
        }
        Ok(())
    }

    /// Oracle self-test hook: displace one stored L1 position far off the map.
    /// Deterministic despite HashMap iteration order: picks the smallest vehicle
    /// id in the first non-empty table.
    #[cfg(feature = "check")]
    fn corrupt_location_tables(&mut self) {
        for table in &mut self.l1_tables {
            let Some(v) = table.iter().map(|(v, _)| v).min() else {
                continue;
            };
            let mut e = *table.peek(v).expect("entry for the id just found");
            e.pos = Point::new(e.pos.x + 50_000.0, e.pos.y + 50_000.0);
            table.record(v, e);
            return;
        }
    }
}
