//! # hlsrg — the paper's contribution
//!
//! A Region-based Hierarchical Location Service with Road-adapted Grids (HLSRG),
//! reproduced from Chang, Chen & Sheu, ICPP Workshops 2010.
//!
//! * [`update`] — the class-1/class-2 location-update rules that suppress most
//!   artery traffic's updates (the 50 % overhead reduction of Fig 3.2).
//! * [`tables`] — the L1/L2/L3 location tables with the paper's 2.2 min / 4.4 min
//!   lifetimes and per-level detail reduction.
//! * [`protocol`] — the full state machine: update broadcasts, the collection
//!   pipeline (L1 custodians → L2 RSU → L3 RSU), hierarchical query resolution with
//!   backoff election, directional geo-broadcast target search, and the 5 s
//!   L3-fallback retry.
//!
//! The protocol implements [`vanet_net::LocationService`], so the same harness that
//! runs it also runs the RLSMP baseline.

#![warn(missing_docs)]

pub mod config;
pub mod messages;
pub mod protocol;
pub mod tables;
pub mod update;

pub use config::{CollectionMode, HlsrgConfig, PacketSizes};
pub use messages::{
    HlsrgPayload, HlsrgTimer, NotifyPacket, RequestPacket, RequestStage, UpdatePacket,
};
pub use protocol::HlsrgProtocol;
pub use tables::{L1Entry, L1Table, L2Table, L3Table, UpEntry};
pub use update::{update_trigger, update_trigger_with_policy, UpdatePolicy, UpdateReason};

#[cfg(test)]
mod protocol_tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use vanet_des::{EventQueue, SimDuration, SimTime};
    use vanet_geo::{Cardinal, Point};
    use vanet_mobility::{MoveSample, TurnEvent, VehicleId};
    use vanet_net::{
        Effect, LocationService, NetworkCore, NodeRegistry, PacketClass, RadioConfig, Transport,
        WiredNetwork,
    };
    use vanet_roadnet::{
        generate_grid, GridMapSpec, IntersectionId, L1Id, L2Id, L3Id, Partition, RoadClass, RoadId,
    };

    /// Test event: either a delivery or a protocol timer.
    enum Ev {
        Deliver(vanet_net::NodeId, Transport<HlsrgPayload>),
        Timer(HlsrgTimer),
    }

    struct Rig {
        proto: HlsrgProtocol,
        core: NetworkCore,
        queue: EventQueue<Ev>,
        partition: Arc<Partition>,
    }

    impl Rig {
        /// Paper 2 km map with lossless radio; vehicles at the given positions.
        fn new(vehicle_positions: &[Point]) -> Rig {
            let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
            let partition = Arc::new(Partition::build(&net, 500.0));
            let mut reg = NodeRegistry::new(500.0);
            for (i, &p) in vehicle_positions.iter().enumerate() {
                reg.add_vehicle(VehicleId(i as u32), p);
            }
            for site in partition.rsus() {
                reg.add_rsu(site.id, site.pos);
            }
            let radio = RadioConfig {
                reliable_fraction: 1.0,
                edge_delivery: 1.0,
                ..Default::default()
            };
            let wired = WiredNetwork::from_partition(&partition, SimDuration::from_millis(2));
            let core = NetworkCore::new(reg, radio, wired, SmallRng::seed_from_u64(1));
            let proto = HlsrgProtocol::new(
                &net,
                Arc::clone(&partition),
                HlsrgConfig::default(),
                SmallRng::seed_from_u64(2),
            );
            Rig {
                proto,
                core,
                queue: EventQueue::new(),
                partition,
            }
        }

        fn apply(&mut self, fx: Vec<Effect<HlsrgPayload, HlsrgTimer>>) {
            for f in fx {
                match f {
                    Effect::Deliver(e) => self
                        .queue
                        .schedule_after(e.delay, Ev::Deliver(e.to, e.transport)),
                    Effect::Timer { delay, key } => {
                        self.queue.schedule_after(delay, Ev::Timer(key))
                    }
                }
            }
        }

        /// Processes events until the queue drains or `horizon` passes.
        fn drain_until(&mut self, horizon: SimTime) {
            while let Some((now, ev)) = self.queue.pop_if_at_or_before(horizon) {
                match ev {
                    Ev::Deliver(to, tr) => {
                        let (arrived, more) = self.core.handle_deliver(to, tr);
                        for e in more {
                            self.queue
                                .schedule_after(e.delay, Ev::Deliver(e.to, e.transport));
                        }
                        if let Some((class, payload)) = arrived {
                            let fx = self
                                .proto
                                .on_packet(&mut self.core, to, class, payload, now);
                            self.apply(fx);
                        }
                    }
                    Ev::Timer(key) => {
                        let fx = self.proto.on_timer(&mut self.core, key, now);
                        self.apply(fx);
                    }
                }
            }
        }
    }

    /// Positions on the 2 km paper map: grid 0's center is (250, 250); grid 5
    /// (ix=1, iy=1) has center (750, 750); the L2#0 RSU sits at (500, 500); the L3
    /// RSU at (1000, 1000).
    const G0_CENTER: Point = Point { x: 250.0, y: 250.0 };
    const G5_CENTER: Point = Point { x: 750.0, y: 750.0 };

    fn artery_update_sample(v: u32, pos: Point) -> MoveSample {
        // A turn on an artery — always an update trigger.
        MoveSample {
            id: VehicleId(v),
            old_pos: pos,
            new_pos: pos,
            road: RoadId(0),
            from: IntersectionId(0),
            road_class: RoadClass::Artery,
            heading: Cardinal::East.into(),
            speed: 10.0,
            turn: Some(TurnEvent {
                at: IntersectionId(0),
                from_road: RoadId(1),
                to_road: RoadId(0),
                kind: vanet_geo::TurnKind::Turn,
                from_class: RoadClass::Artery,
                onto_class: RoadClass::Artery,
            }),
        }
    }

    #[test]
    fn update_recorded_by_custodian() {
        // Vehicle 0 = custodian sitting at grid 0's center; vehicle 1 updates 200 m
        // away inside grid 0.
        let sender_pos = Point::new(250.0, 100.0);
        let mut rig = Rig::new(&[G0_CENTER, sender_pos]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, sender_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.l1_table_len(L1Id(0)), 1);
        assert_eq!(rig.core.counters.origination_count(PacketClass::Update), 1);
        // Other grids know nothing.
        assert_eq!(rig.proto.l1_table_len(L1Id(5)), 0);
    }

    #[test]
    fn update_not_recorded_without_custodian() {
        // Sender alone in grid 0: the broadcast reaches nobody at the center.
        let mut rig = Rig::new(&[Point::new(450.0, 20.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(0, Point::new(450.0, 20.0))],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.l1_table_len(L1Id(0)), 0);
    }

    #[test]
    fn old_grid_deletes_on_new_grid_update() {
        // Custodians at grid 0's and grid 1's centers; the vehicle first updates in
        // grid 0, then (having moved into grid 1) updates from a position still
        // within one hop of grid 0's center.
        let g1_center = Point::new(750.0, 250.0);
        let mut rig = Rig::new(&[G0_CENTER, g1_center, Point::new(450.0, 250.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(2, Point::new(450.0, 250.0))],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.l1_table_len(L1Id(0)), 1);

        // Move into grid 1 and update again; grid 0's custodian hears and deletes.
        let new_pos = Point::new(550.0, 250.0);
        rig.core
            .registry
            .set_pos(rig.core.registry.node_of_vehicle(VehicleId(2)), new_pos);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(2, new_pos)],
            rig.queue.now() + SimDuration::from_secs(1),
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(3));
        assert_eq!(
            rig.proto.l1_table_len(L1Id(0)),
            0,
            "old grid kept the entry"
        );
        assert_eq!(rig.proto.l1_table_len(L1Id(1)), 1);
    }

    #[test]
    fn collection_flows_l1_to_l2_to_l3() {
        let sender_pos = Point::new(250.0, 100.0);
        let mut rig = Rig::new(&[G0_CENTER, sender_pos]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, sender_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        // Arm the periodic timers and run a full collection + push cycle.
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(45));
        assert_eq!(rig.proto.l2_table_len(L2Id(0)), 1, "L2 missed the push");
        assert_eq!(rig.proto.l3_table_len(L3Id(0)), 1, "L3 missed the push");
        assert!(rig.core.counters.origination_count(PacketClass::Collection) >= 2);
        assert!(rig.core.counters.wired(PacketClass::Collection) >= 1);
    }

    #[test]
    fn local_query_resolves_via_l1_center() {
        // Dv (vehicle 1) updated in grid 0 while driving an artery eastward and is
        // still on that road. Sv (vehicle 2) is also in grid 0.
        let dv_pos = Point::new(300.0, 0.0); // on the southern artery
        let sv_pos = Point::new(150.0, 250.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, sv_pos]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.l1_table_len(L1Id(0)), 1);

        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), rig.queue.now());
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(4));
        let log = rig.proto.query_log();
        assert_eq!(log.launched_count(), 1);
        assert_eq!(log.success_count(SimDuration::from_secs(30)), 1);
        let lat = log
            .latency_stats(SimDuration::from_secs(30))
            .mean()
            .unwrap();
        assert!(lat < 1.0, "local query took {lat}s");
    }

    #[test]
    fn directional_search_finds_moved_artery_target() {
        // Dv updated at x=300 heading east on the artery y=0, then drove 600 m to
        // x=900 before the query arrived. The directional broadcast must catch it.
        let dv_update_pos = Point::new(300.0, 0.0);
        let dv_now_pos = Point::new(900.0, 0.0);
        let mut rig = Rig::new(&[
            G0_CENTER,
            dv_update_pos,            // vehicle 1 = Dv (moved below)
            Point::new(150.0, 250.0), // vehicle 2 = Sv
            Point::new(600.0, 0.0),   // relay on the artery
            Point::new(450.0, 20.0),  // second relay, within the corridor
        ]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_update_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        // Dv drives on.
        rig.core
            .registry
            .set_pos(rig.core.registry.node_of_vehicle(VehicleId(1)), dv_now_pos);

        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), rig.queue.now());
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(4));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            1
        );
    }

    #[test]
    fn query_escalates_to_l2_and_resolves_remotely() {
        // Dv is known only in grid 5 (whose custodian pushes to the L2 RSU);
        // Sv asks from grid 0, whose center has no entry.
        let dv_pos = Point::new(700.0, 500.0); // on artery y=500, inside grid 5
        let sv_pos = Point::new(150.0, 250.0);
        let mut rig = Rig::new(&[
            G0_CENTER,
            G5_CENTER,
            dv_pos,                   // vehicle 2 = Dv
            sv_pos,                   // vehicle 3 = Sv
            Point::new(500.0, 400.0), // relay between the grids
        ]);
        // Dv updates in grid 5.
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(2, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        // Run collection so L2#0 learns that grid 5 knows Dv.
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(30));
        assert!(rig.proto.l2_table_len(L2Id(0)) >= 1);

        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(3), VehicleId(2), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            1,
            "remote query failed"
        );
    }

    #[test]
    fn unanswerable_query_times_out_and_retries_at_l3() {
        // No updates anywhere: the query must fail, and the 5 s retry must fire.
        let mut rig = Rig::new(&[
            G0_CENTER,
            Point::new(150.0, 250.0),
            Point::new(1900.0, 1900.0),
        ]);
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(1), VehicleId(2), SimTime::ZERO);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(40));
        let log = rig.proto.query_log();
        assert_eq!(log.success_count(SimDuration::from_secs(30)), 0);
        assert!(
            log.get(vanet_net::QueryId(0)).retried,
            "timeout retry never fired"
        );
    }

    #[test]
    fn ttl_expires_stale_entries_before_queries() {
        let dv_pos = Point::new(300.0, 0.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, Point::new(150.0, 250.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        // Advance the clock far past the (distance-calibrated) L1 TTL.
        rig.queue.schedule_at(
            SimTime::from_secs(300),
            Ev::Timer(HlsrgTimer::L1Collect { l1: L1Id(15) }),
        );
        rig.drain_until(SimTime::from_secs(300));
        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(300)),
            0
        );
    }

    #[test]
    fn l2_rsu_nearest_gets_direct_request() {
        // Sv parked right next to the L2 RSU at (500,500): the request goes there
        // first, not to an L1 center, and still resolves.
        let dv_pos = Point::new(300.0, 0.0);
        let sv_pos = Point::new(510.0, 505.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, sv_pos]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        let fx = rig.proto.on_start(&mut rig.core);
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(30));

        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        assert_eq!(
            rig.proto
                .query_log()
                .success_count(SimDuration::from_secs(30)),
            1
        );
    }

    #[test]
    fn reason_counters_track_triggers() {
        let sender_pos = Point::new(250.0, 100.0);
        let mut rig = Rig::new(&[G0_CENTER, sender_pos]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, sender_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        assert_eq!(rig.proto.reason_counts()[0], 1); // ArteryTurn
        assert_eq!(rig.proto.reason_counts()[1..], [0, 0, 0]);
    }

    #[test]
    fn escalation_attaches_and_merges_the_l1_table() {
        // The L1 center knows vehicle 1 but is asked for (unknown) vehicle 9; the
        // escalation to L2 must carry the table so the RSU learns vehicle 1.
        let dv_pos = Point::new(300.0, 0.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, Point::new(150.0, 250.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        assert_eq!(rig.proto.l2_table_len(L2Id(0)), 0, "L2 knows too early");

        // Vehicle 2 queries a vehicle nobody knows.
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(9), rig.queue.now());
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(10));
        assert!(
            rig.proto.l2_table_len(L2Id(0)) >= 1,
            "the attached table never reached the L2 RSU"
        );
    }

    #[test]
    fn completed_query_suppresses_late_services() {
        use vanet_net::QueryId;
        let dv_pos = Point::new(300.0, 0.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, Point::new(150.0, 250.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        let log = rig.proto.query_log();
        assert!(log.is_complete(QueryId(0)));
        // The 5 s timeout fired *after* completion: no retry must be recorded.
        assert!(!log.get(QueryId(0)).retried, "retried a completed query");
    }

    #[test]
    fn exhausted_budget_kills_a_request_silently() {
        use messages::{RequestPacket, RequestStage};
        let mut rig = Rig::new(&[G0_CENTER, Point::new(150.0, 250.0)]);
        let query = {
            // Seed the ledger so handle_request's completion check has a record.
            let fx =
                rig.proto
                    .launch_query(&mut rig.core, VehicleId(1), VehicleId(0), SimTime::ZERO);
            rig.apply(fx);
            vanet_net::QueryId(0)
        };
        let node = rig.core.registry.node_of_vehicle(VehicleId(0));
        let dead = RequestPacket {
            query,
            src: VehicleId(1),
            dst: VehicleId(0),
            src_pos: Point::new(150.0, 250.0),
            stage: RequestStage::L1 {
                l1: L1Id(0),
                from_l2: false,
            },
            budget: 0,
            attach: None,
        };
        let fx = rig.proto.on_packet(
            &mut rig.core,
            node,
            PacketClass::Query,
            HlsrgPayload::Request(dead),
            SimTime::from_secs(1),
        );
        assert!(fx.is_empty(), "budget-0 request produced effects");
    }

    #[test]
    fn data_session_follows_successful_query() {
        let dv_pos = Point::new(300.0, 0.0);
        let mut rig = Rig::new(&[G0_CENTER, dv_pos, Point::new(150.0, 250.0)]);
        let fx = rig.proto.on_move(
            &mut rig.core,
            &[artery_update_sample(1, dv_pos)],
            SimTime::ZERO,
        );
        rig.apply(fx);
        rig.drain_until(SimTime::from_secs(1));
        let t0 = rig.queue.now();
        let fx = rig
            .proto
            .launch_query(&mut rig.core, VehicleId(2), VehicleId(1), t0);
        rig.apply(fx);
        rig.drain_until(t0 + SimDuration::from_secs(20));
        assert_eq!(
            rig.core.counters.origination_count(PacketClass::Data),
            rig.proto.config().data_packets_per_session as u64
        );
        let delivered = rig
            .proto
            .diagnostics()
            .iter()
            .find(|(k, _)| *k == "data_delivered")
            .map(|&(_, v)| v)
            .unwrap();
        assert_eq!(
            delivered,
            rig.proto.config().data_packets_per_session as f64
        );
    }

    #[test]
    fn partition_arc_is_shared_not_cloned() {
        let rig = Rig::new(&[G0_CENTER]);
        assert!(Arc::strong_count(&rig.partition) >= 2);
    }
}

#[cfg(test)]
mod protocol_proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::sync::Arc;
    use vanet_des::{EventQueue, SimDuration, SimTime};
    use vanet_geo::{Cardinal, Point, TurnKind};
    use vanet_mobility::{MoveSample, TurnEvent, VehicleId};
    use vanet_net::{
        Effect, LocationService, NetworkCore, NodeRegistry, RadioConfig, Transport, WiredNetwork,
    };
    use vanet_roadnet::{generate_grid, GridMapSpec, IntersectionId, Partition, RoadClass, RoadId};

    /// One fuzzed protocol stimulus.
    #[derive(Debug, Clone)]
    enum Op {
        /// Vehicle `v` moves to `(x, y)` and maybe turns (class pair encoded).
        Move {
            v: u8,
            x: f64,
            y: f64,
            turned: bool,
            artery: bool,
        },
        /// Vehicle `a` queries vehicle `b`.
        Query { a: u8, b: u8 },
        /// Let the event queue drain for `ms` of simulated time.
        Drain { ms: u16 },
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (
                0u8..12,
                0.0f64..2000.0,
                0.0f64..2000.0,
                any::<bool>(),
                any::<bool>()
            )
                .prop_map(|(v, x, y, turned, artery)| Op::Move {
                    v,
                    x,
                    y,
                    turned,
                    artery
                }),
            (0u8..12, 0u8..12).prop_map(|(a, b)| Op::Query { a, b }),
            (1u16..5000).prop_map(|ms| Op::Drain { ms }),
        ]
    }

    enum Ev {
        Deliver(vanet_net::NodeId, Transport<HlsrgPayload>),
        Timer(HlsrgTimer),
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(48))]

        /// Arbitrary interleavings of moves, queries, and time never panic, never
        /// complete a query before its launch, and keep per-grid tables bounded by
        /// the fleet size.
        #[test]
        fn random_stimuli_preserve_invariants(ops in proptest::collection::vec(op_strategy(), 1..60)) {
            let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
            let partition = Arc::new(Partition::build(&net, 500.0));
            let mut reg = NodeRegistry::new(500.0);
            for i in 0..12u32 {
                reg.add_vehicle(VehicleId(i), Point::new(100.0 + 150.0 * i as f64, 300.0));
            }
            for site in partition.rsus() {
                reg.add_rsu(site.id, site.pos);
            }
            let wired = WiredNetwork::from_partition(&partition, SimDuration::from_millis(2));
            let mut core =
                NetworkCore::new(reg, RadioConfig::default(), wired, SmallRng::seed_from_u64(1));
            let mut proto = HlsrgProtocol::new(
                &net,
                Arc::clone(&partition),
                HlsrgConfig::default(),
                SmallRng::seed_from_u64(2),
            );
            let mut queue: EventQueue<Ev> = EventQueue::new();
            let fx = proto.on_start(&mut core);
            apply(&mut queue, fx);

            for op in ops {
                match op {
                    Op::Move { v, x, y, turned, artery } => {
                        let id = VehicleId(v as u32);
                        let node = core.registry.node_of_vehicle(id);
                        let old_pos = core.registry.pos(node);
                        let new_pos = Point::new(x, y);
                        core.registry.set_pos(node, new_pos);
                        let class = if artery { RoadClass::Artery } else { RoadClass::Normal };
                        let sample = MoveSample {
                            id,
                            old_pos,
                            new_pos,
                            road: RoadId(0),
                            from: IntersectionId(0),
                            road_class: class,
                            heading: Cardinal::East.into(),
                            speed: 10.0,
                            turn: turned.then_some(TurnEvent {
                                at: IntersectionId(0),
                                from_road: RoadId(1),
                                to_road: RoadId(0),
                                kind: TurnKind::Turn,
                                from_class: class,
                                onto_class: class,
                            }),
                        };
                        let now = queue.now();
                        let fx = proto.on_move(&mut core, &[sample], now);
                        apply(&mut queue, fx);
                    }
                    Op::Query { a, b } => {
                        if a != b {
                            let now = queue.now();
                            let fx = proto.launch_query(
                                &mut core,
                                VehicleId(a as u32),
                                VehicleId(b as u32),
                                now,
                            );
                            apply(&mut queue, fx);
                        }
                    }
                    Op::Drain { ms } => {
                        let horizon = queue.now() + SimDuration::from_millis(ms as u64);
                        drain_until(&mut queue, &mut proto, &mut core, horizon);
                    }
                }
            }
            // Final drain bounded well past every timer.
            let end = queue.now() + SimDuration::from_secs(40);
            drain_until(&mut queue, &mut proto, &mut core, end);

            // Ledger sanity: completions never precede launches.
            for r in proto.query_log().records() {
                if let Some(done) = r.completed {
                    prop_assert!(done >= r.launched);
                }
            }
            // Table sanity: no grid can know more vehicles than exist.
            for g in 0..partition.l1_count() as u32 {
                prop_assert!(proto.l1_table_len(vanet_roadnet::L1Id(g)) <= 12);
            }
        }
    }

    fn apply(queue: &mut EventQueue<Ev>, fx: Vec<Effect<HlsrgPayload, HlsrgTimer>>) {
        for f in fx {
            match f {
                Effect::Deliver(e) => queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport)),
                Effect::Timer { delay, key } => queue.schedule_after(delay, Ev::Timer(key)),
            }
        }
    }

    fn drain_until(
        queue: &mut EventQueue<Ev>,
        proto: &mut HlsrgProtocol,
        core: &mut NetworkCore,
        horizon: SimTime,
    ) {
        while let Some((now, ev)) = queue.pop_if_at_or_before(horizon) {
            match ev {
                Ev::Deliver(to, tr) => {
                    let (arrived, more) = core.handle_deliver(to, tr);
                    for e in more {
                        queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport));
                    }
                    if let Some((class, payload)) = arrived {
                        let fx = proto.on_packet(core, to, class, payload, now);
                        apply(queue, fx);
                    }
                }
                Ev::Timer(key) => {
                    let fx = proto.on_timer(core, key, now);
                    apply(queue, fx);
                }
            }
        }
    }
}
