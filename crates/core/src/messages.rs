//! Wire payloads and timer keys of the HLSRG protocol.

use serde::{Deserialize, Serialize};
use vanet_des::SimTime;
use vanet_geo::{Heading, Point};
use vanet_mobility::VehicleId;
use vanet_net::{NodeId, QueryId};
use vanet_roadnet::{L1Id, L2Id, L3Id, RoadClass, RoadId};

/// A vehicle's one-hop location update broadcast (paper §2.2: location, time,
/// direction, Level-1 grid number, and id).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UpdatePacket {
    /// The updating vehicle.
    pub vehicle: VehicleId,
    /// Its position when sending.
    pub pos: Point,
    /// Send time.
    pub time: SimTime,
    /// Direction of travel (drives the directional search later).
    pub heading: Heading,
    /// Road being driven.
    pub road: RoadId,
    /// Class of that road.
    pub road_class: RoadClass,
    /// The L1 grid this update belongs to.
    pub l1: L1Id,
}

/// Which hierarchy level must process a request next.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum RequestStage {
    /// Resolve at an L1 grid center.
    L1 {
        /// The grid.
        l1: L1Id,
        /// True if an upper level routed the request down (a second miss then
        /// escalates straight to L3 instead of ping-ponging).
        from_l2: bool,
    },
    /// Resolve at an L2 RSU.
    L2 {
        /// The grid.
        l2: L2Id,
        /// True if an L3 RSU routed the request down; a miss then means the
        /// hierarchy's freshest pointer is already stale, so the request dies
        /// instead of ping-ponging back up.
        from_l3: bool,
    },
    /// Resolve at an L3 RSU.
    L3 {
        /// The grid.
        l3: L3Id,
        /// True if another L3 RSU forwarded it (paper: such requests must resolve
        /// here).
        from_l3: bool,
    },
}

/// A location request working its way through the hierarchy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestPacket {
    /// Query this request serves.
    pub query: QueryId,
    /// The asking vehicle.
    pub src: VehicleId,
    /// The sought vehicle.
    pub dst: VehicleId,
    /// Source position at launch (so servers can answer without a reverse lookup).
    pub src_pos: Point,
    /// Current processing level.
    pub stage: RequestStage,
    /// Remaining escalation/forward budget (loop protection).
    pub budget: u8,
    /// L1 table summary attached when an L1 center escalates (paper: "send its own
    /// table and the request packet to its Level 2 RSU").
    pub attach: Option<(L1Id, Vec<(VehicleId, SimTime)>)>,
}

/// The notification searching for the destination vehicle.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NotifyPacket {
    /// Query this notification serves.
    pub query: QueryId,
    /// The asking vehicle (the ACK's target).
    pub src: VehicleId,
    /// The vehicle being notified.
    pub dst: VehicleId,
    /// Where the asking vehicle is (included per paper so `dst` can ACK).
    pub src_pos: Point,
}

/// Everything HLSRG puts on the wire.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HlsrgPayload {
    /// One-hop location update broadcast.
    Update(UpdatePacket),
    /// A departing custodian's table hand-off broadcast at the intersection
    /// (paper §2.2.2). Carries no rows on the wire in our logical-table model —
    /// the packet exists for overhead accounting and remains a protocol hook.
    TableHandoff {
        /// The grid whose table is handed off.
        l1: L1Id,
    },
    /// L1 center → L2 RSU table push.
    TableToL2 {
        /// Destination grid.
        l2: L2Id,
        /// Reporting L1 grid.
        from_l1: L1Id,
        /// `(vehicle, update time)` rows.
        rows: Vec<(VehicleId, SimTime)>,
    },
    /// L2 RSU → L3 RSU wired table push.
    TableToL3 {
        /// Destination grid.
        l3: L3Id,
        /// Reporting L2 grid.
        from_l2: L2Id,
        /// `(vehicle, update time)` rows.
        rows: Vec<(VehicleId, SimTime)>,
    },
    /// A location request at some stage of resolution.
    Request(RequestPacket),
    /// The search notification flooded toward the destination.
    Notify(NotifyPacket),
    /// The destination's acknowledgement back to the source.
    Ack {
        /// Query being answered.
        query: QueryId,
    },
    /// Post-discovery application data riding GPSR to the located vehicle.
    Data {
        /// The discovery session this packet belongs to.
        session: QueryId,
        /// Packet sequence number within the session.
        seq: u32,
        /// The destination vehicle.
        dst: VehicleId,
    },
}

/// The last-known whereabouts a location server answers from.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NotifySource {
    /// Recorded position.
    pub pos: Point,
    /// Recorded direction of travel.
    pub heading: Heading,
    /// Road class at update time: artery → directional search; normal → grid flood.
    pub road_class: RoadClass,
    /// The grid the entry lives in.
    pub l1: L1Id,
}

/// HLSRG timers.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum HlsrgTimer {
    /// A custodian won the 0–15-slot election and will notify the destination.
    ServeNotify {
        /// Query served.
        query: QueryId,
        /// The elected location server.
        server: NodeId,
        /// Last-known whereabouts of the destination.
        source: NotifySource,
        /// Asking vehicle.
        src: VehicleId,
        /// Sought vehicle.
        dst: VehicleId,
    },
    /// The 17–31-slot "nobody knows" backoff expired: escalate the request.
    Escalate {
        /// Node that forwards the request.
        server: NodeId,
        /// The request, already restaged at the next level.
        request: RequestPacket,
    },
    /// Periodic L1-center table push to the L2 RSU.
    L1Collect {
        /// The grid to collect.
        l1: L1Id,
    },
    /// Periodic L2 → L3 wired table push.
    L2Push {
        /// The grid to push.
        l2: L2Id,
    },
    /// The source's 5 s ACK timeout: retry straight at the nearest L3 RSU.
    QueryTimeout {
        /// Query to check.
        query: QueryId,
        /// The asking vehicle.
        src: VehicleId,
        /// The sought vehicle.
        dst: VehicleId,
    },
}
