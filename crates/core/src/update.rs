//! The location-update decision rules (paper §2.2.1).
//!
//! Vehicles fall into two classes by the road they are driving:
//!
//! **Class 1 — on a selected main artery.** Send an update only when
//! 1. driving straight across a **Level-3** grid boundary, or
//! 2. turning onto any other road (artery or normal).
//!
//! **Class 2 — on a normal road.** Send an update when
//! 1. driving straight across a boundary of **any** level (i.e. any L1 boundary), or
//! 2. turning onto a main artery.
//!
//! Because ~90 % of traffic is on arteries and artery traffic mostly flows straight,
//! these rules suppress the bulk of the per-boundary updates a naive scheme (RLSMP)
//! sends — the 50 % overhead reduction of Fig 3.2 comes from exactly this function.

use serde::{Deserialize, Serialize};
use vanet_geo::TurnKind;
use vanet_mobility::MoveSample;
use vanet_roadnet::{Partition, RoadClass};

/// Why an update was triggered (for diagnostics and tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UpdateReason {
    /// Class 1, rule 2: an artery vehicle turned.
    ArteryTurn,
    /// Class 1, rule 1: an artery vehicle crossed an L3 boundary going straight.
    ArteryL3Crossing,
    /// Class 2, rule 2: a normal-road vehicle turned onto an artery.
    NormalTurnOntoArtery,
    /// Class 2, rule 1: a normal-road vehicle crossed a grid boundary.
    NormalBoundaryCrossing,
}

/// Which update discipline vehicles follow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum UpdatePolicy {
    /// The paper's road-adapted class-1/class-2 rules.
    #[default]
    RoadAdapted,
    /// Ablation baseline: update on *every* L1 boundary crossing regardless of
    /// road class (what a naive grid scheme would do).
    EveryL1Crossing,
}

/// Applies `policy` to one movement sample.
pub fn update_trigger_with_policy(
    partition: &Partition,
    policy: UpdatePolicy,
    s: &MoveSample,
) -> Option<UpdateReason> {
    match policy {
        UpdatePolicy::RoadAdapted => update_trigger(partition, s),
        UpdatePolicy::EveryL1Crossing => (partition.l1_of(s.old_pos) != partition.l1_of(s.new_pos))
            .then_some(UpdateReason::NormalBoundaryCrossing),
    }
}

/// Applies the class-1/class-2 rules to one movement sample.
///
/// Returns `Some(reason)` if the vehicle must broadcast a location update this tick.
pub fn update_trigger(partition: &Partition, s: &MoveSample) -> Option<UpdateReason> {
    // A straight crossing of an intersection is not a "turn" in the paper's sense.
    let turned = s.turn.filter(|t| t.kind != TurnKind::Straight);
    // The class is decided by the road the vehicle was driving *before* the
    // maneuver: a vehicle leaving an artery follows the artery rule for that turn.
    let driving_class = turned.map(|t| t.from_class).unwrap_or(s.road_class);

    match driving_class {
        RoadClass::Artery => {
            if turned.is_some() {
                return Some(UpdateReason::ArteryTurn);
            }
            if partition.l3_of(s.old_pos) != partition.l3_of(s.new_pos) {
                return Some(UpdateReason::ArteryL3Crossing);
            }
            None
        }
        RoadClass::Normal => {
            if let Some(t) = turned {
                if t.onto_class == RoadClass::Artery {
                    return Some(UpdateReason::NormalTurnOntoArtery);
                }
            }
            if partition.l1_of(s.old_pos) != partition.l1_of(s.new_pos) {
                return Some(UpdateReason::NormalBoundaryCrossing);
            }
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use vanet_geo::{Cardinal, Heading, Point};
    use vanet_mobility::{TurnEvent, VehicleId};
    use vanet_roadnet::{generate_grid, GridMapSpec, IntersectionId, L1Id, RoadId};

    fn partition(size: f64) -> Partition {
        let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
        Partition::build(&net, 500.0)
    }

    fn sample(
        old_pos: Point,
        new_pos: Point,
        road_class: RoadClass,
        turn: Option<TurnEvent>,
    ) -> MoveSample {
        MoveSample {
            id: VehicleId(0),
            old_pos,
            new_pos,
            road: RoadId(0),
            from: IntersectionId(0),
            road_class,
            heading: Heading::from(Cardinal::East),
            speed: 10.0,
            turn,
        }
    }

    fn turn(kind: TurnKind, from_class: RoadClass, onto_class: RoadClass) -> TurnEvent {
        TurnEvent {
            at: IntersectionId(0),
            from_road: RoadId(0),
            to_road: RoadId(1),
            kind,
            from_class,
            onto_class,
        }
    }

    // ---- Class 1 (artery) ----

    #[test]
    fn artery_straight_within_l3_is_silent() {
        let p = partition(2000.0); // one L3 grid: no L3 crossings possible
                                   // Crosses an L1 boundary (x: 499 → 501) going straight on an artery.
        let s = sample(
            Point::new(499.0, 0.0),
            Point::new(501.0, 0.0),
            RoadClass::Artery,
            None,
        );
        assert_eq!(update_trigger(&p, &s), None);
    }

    #[test]
    fn artery_l3_crossing_triggers() {
        let p = partition(4000.0); // 2×2 L3 grids, boundary at x = 2000
        let s = sample(
            Point::new(1999.0, 100.0),
            Point::new(2001.0, 100.0),
            RoadClass::Artery,
            None,
        );
        assert_eq!(update_trigger(&p, &s), Some(UpdateReason::ArteryL3Crossing));
    }

    #[test]
    fn artery_turn_triggers_whatever_the_target_road() {
        let p = partition(2000.0);
        for onto in [RoadClass::Artery, RoadClass::Normal] {
            let s = sample(
                Point::new(100.0, 0.0),
                Point::new(100.0, 5.0),
                onto, // now on the new road
                Some(turn(TurnKind::Turn, RoadClass::Artery, onto)),
            );
            assert_eq!(
                update_trigger(&p, &s),
                Some(UpdateReason::ArteryTurn),
                "onto {onto:?}"
            );
        }
    }

    #[test]
    fn artery_straight_through_intersection_is_silent() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(498.0, 0.0),
            Point::new(503.0, 0.0),
            RoadClass::Artery,
            Some(turn(
                TurnKind::Straight,
                RoadClass::Artery,
                RoadClass::Artery,
            )),
        );
        assert_eq!(update_trigger(&p, &s), None);
    }

    // ---- Class 2 (normal road) ----

    #[test]
    fn normal_crossing_any_l1_boundary_triggers() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(499.0, 250.0),
            Point::new(501.0, 250.0),
            RoadClass::Normal,
            None,
        );
        assert_eq!(
            update_trigger(&p, &s),
            Some(UpdateReason::NormalBoundaryCrossing)
        );
        // Confirm the two points really are in different L1 grids.
        assert_ne!(p.l1_of(s.old_pos), p.l1_of(s.new_pos));
    }

    #[test]
    fn normal_within_grid_is_silent() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(100.0, 250.0),
            Point::new(105.0, 250.0),
            RoadClass::Normal,
            None,
        );
        assert_eq!(update_trigger(&p, &s), None);
        assert_eq!(p.l1_of(s.old_pos), L1Id(0));
    }

    #[test]
    fn normal_turn_onto_artery_triggers() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(250.0, 250.0),
            Point::new(250.0, 255.0),
            RoadClass::Artery,
            Some(turn(TurnKind::Turn, RoadClass::Normal, RoadClass::Artery)),
        );
        assert_eq!(
            update_trigger(&p, &s),
            Some(UpdateReason::NormalTurnOntoArtery)
        );
    }

    #[test]
    fn normal_turn_onto_normal_is_silent_without_crossing() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(250.0, 250.0),
            Point::new(250.0, 255.0),
            RoadClass::Normal,
            Some(turn(TurnKind::Turn, RoadClass::Normal, RoadClass::Normal)),
        );
        assert_eq!(update_trigger(&p, &s), None);
    }

    #[test]
    fn normal_turn_with_boundary_crossing_still_triggers() {
        let p = partition(2000.0);
        // Turning normal→normal while also crossing an L1 boundary: rule 1 applies.
        let s = sample(
            Point::new(499.0, 250.0),
            Point::new(501.0, 252.0),
            RoadClass::Normal,
            Some(turn(TurnKind::Turn, RoadClass::Normal, RoadClass::Normal)),
        );
        assert_eq!(
            update_trigger(&p, &s),
            Some(UpdateReason::NormalBoundaryCrossing)
        );
    }

    #[test]
    fn class_decided_by_previous_road() {
        let p = partition(2000.0);
        // Vehicle was on a NORMAL road, turned onto an artery, and the sample's
        // current class is Artery — the class-2 rule must be the one that fires.
        let s = sample(
            Point::new(100.0, 100.0),
            Point::new(100.0, 105.0),
            RoadClass::Artery,
            Some(turn(TurnKind::Turn, RoadClass::Normal, RoadClass::Artery)),
        );
        assert_eq!(
            update_trigger(&p, &s),
            Some(UpdateReason::NormalTurnOntoArtery)
        );
    }

    #[test]
    fn uturn_counts_as_turn() {
        let p = partition(2000.0);
        let s = sample(
            Point::new(100.0, 0.0),
            Point::new(95.0, 0.0),
            RoadClass::Artery,
            Some(turn(TurnKind::UTurn, RoadClass::Artery, RoadClass::Artery)),
        );
        assert_eq!(update_trigger(&p, &s), Some(UpdateReason::ArteryTurn));
    }
}
