//! Vendored minimal stand-in for `serde`.
//!
//! Offline builds cannot fetch the real serde; the workspace only needs the
//! derive attributes to parse (no code path serializes through serde), so this
//! crate provides marker traits and re-exports the no-op derives.

/// Marker trait matching `serde::Serialize`'s name.
pub trait Serialize {}

/// Marker trait matching `serde::Deserialize`'s name.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
