//! No-op `Serialize` / `Deserialize` derives for the vendored serde stand-in.
//!
//! The workspace derives serde traits on many types for forward compatibility,
//! but nothing in the offline build actually serializes through serde (JSONL
//! export in `vanet-trace` writes JSON by hand). These derives accept the same
//! syntax (including `#[serde(...)]` helper attributes) and expand to nothing.

use proc_macro::TokenStream;

/// Accepts `#[derive(Serialize)]` and emits no code.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts `#[derive(Deserialize)]` and emits no code.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
