//! Vendored minimal stand-in for `criterion`.
//!
//! Offline builds cannot fetch the real criterion, so this crate implements the
//! API surface the `bench` crate uses — `Criterion::default()`,
//! `configure_from_args`, `sample_size`, `bench_function`, `benchmark_group`,
//! `bench_with_input`, `BenchmarkId::from_parameter`, `Bencher::iter`, and
//! `final_summary` — with straightforward wall-clock measurement (median of a
//! fixed sample of timed batches) instead of criterion's statistics engine.
//! Output is one line per benchmark: `name ... median time / iter`.

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of `std::hint::black_box` under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Builds an id from a function name and a parameter.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Builds an id from just a parameter value.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Times closures under test.
pub struct Bencher {
    /// Measured per-iteration durations of each sample batch.
    samples: Vec<Duration>,
    sample_count: usize,
}

impl Bencher {
    /// Runs `routine` repeatedly and records per-iteration wall time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: one untimed call (also sizes the batch).
        let warm_start = Instant::now();
        black_box(routine());
        let warm = warm_start.elapsed();
        // Batch so that one sample takes ≥ ~10 ms for cheap routines.
        let batch = if warm >= Duration::from_millis(10) {
            1
        } else {
            let per = warm.as_nanos().max(20) as u64;
            (10_000_000 / per).clamp(1, 100_000)
        };
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(routine());
            }
            self.samples.push(start.elapsed() / batch as u32);
        }
    }

    fn median(&mut self) -> Option<Duration> {
        if self.samples.is_empty() {
            return None;
        }
        self.samples.sort_unstable();
        Some(self.samples[self.samples.len() / 2])
    }
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_count: usize,
    filter: Option<String>,
    ran: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_count: 10,
            filter: None,
            ran: 0,
        }
    }
}

impl Criterion {
    /// Sets how many timed samples each benchmark takes.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_count = n.max(1);
        self
    }

    /// Honors a benchmark-name substring filter from the command line
    /// (`cargo bench -- <filter>`); other criterion flags are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let arg = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-') && a != "--bench");
        self.filter = arg;
        self
    }

    fn selected(&self, id: &str) -> bool {
        self.filter.as_deref().is_none_or(|f| id.contains(f))
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) {
        if !self.selected(id) {
            return;
        }
        let mut b = Bencher {
            samples: Vec::new(),
            sample_count: self.sample_count,
        };
        f(&mut b);
        self.ran += 1;
        match b.median() {
            Some(m) => println!("{id:<60} {:>12} / iter", format_duration(m)),
            None => println!("{id:<60} (no measurement)"),
        }
    }

    /// Benchmarks one named closure.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        self.run_one(id, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Prints the closing summary line.
    pub fn final_summary(&mut self) {
        println!("ran {} benchmark(s)", self.ran);
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks one parameterized case.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&full, |b| f(b, input));
        self
    }

    /// Benchmarks one named closure within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Groups benchmark functions into one callable, matching criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
}

/// Emits a `main` running the given groups, matching criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_counts() {
        let mut c = Criterion::default().sample_size(2);
        let mut calls = 0u32;
        c.bench_function("t/one", |b| b.iter(|| calls += 1));
        assert!(calls > 0);
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn filter_skips_nonmatching() {
        let mut c = Criterion {
            sample_count: 1,
            filter: Some("match-me".into()),
            ran: 0,
        };
        c.bench_function("other", |b| b.iter(|| ()));
        assert_eq!(c.ran, 0);
        c.bench_function("yes/match-me", |b| b.iter(|| ()));
        assert_eq!(c.ran, 1);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default().sample_size(1);
        let mut g = c.benchmark_group("grp");
        g.bench_with_input(BenchmarkId::from_parameter(5), &5, |b, &n| {
            b.iter(|| black_box(n * 2))
        });
        g.finish();
        assert_eq!(c.ran, 1);
    }
}
