//! Vendored minimal stand-in for `proptest`.
//!
//! Offline builds cannot fetch the real proptest. This crate implements the
//! subset of its API the workspace uses — the [`proptest!`] macro,
//! [`strategy::Strategy`] with `prop_map`, range and tuple strategies,
//! [`collection::vec`], [`prop_oneof!`], `any::<T>()`, and the `prop_assert*`
//! macros — on top of a deterministic RNG. Failing cases are reported with
//! their case number; there is no shrinking.

pub mod strategy {
    //! Value-generation strategies.

    use rand::rngs::SmallRng;

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut SmallRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erases the strategy (needed to mix branches in [`prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

    impl<V> Strategy for BoxedStrategy<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut SmallRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Strategy that always yields clones of one value.
    #[derive(Debug, Clone)]
    pub struct Just<V: Clone>(pub V);

    impl<V: Clone> Strategy for Just<V> {
        type Value = V;
        fn generate(&self, _rng: &mut SmallRng) -> V {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed alternatives (the engine behind `prop_oneof!`).
    pub struct Union<V> {
        branches: Vec<BoxedStrategy<V>>,
    }

    impl<V> Union<V> {
        /// Builds a union; panics on an empty branch list.
        pub fn new(branches: Vec<BoxedStrategy<V>>) -> Self {
            assert!(
                !branches.is_empty(),
                "prop_oneof! needs at least one branch"
            );
            Union { branches }
        }
    }

    impl<V> Strategy for Union<V> {
        type Value = V;
        fn generate(&self, rng: &mut SmallRng) -> V {
            use rand::RngExt;
            let ix = rng.random_range(0..self.branches.len());
            self.branches[ix].generate(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::RngExt;
                    rng.random_range(self.clone())
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut SmallRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Types with a canonical "any value" strategy.
    pub trait Arbitrary: Sized {
        /// The strategy type for this type.
        type Strategy: Strategy<Value = Self>;
        /// The full-domain strategy.
        fn arbitrary() -> Self::Strategy;
    }

    /// Full-domain strategy for primitives (used by `any::<T>()`).
    #[derive(Debug, Clone, Default)]
    pub struct Any<T>(core::marker::PhantomData<T>);

    macro_rules! impl_arbitrary_via_standard {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut SmallRng) -> $t {
                    use rand::RngExt;
                    rng.random()
                }
            }
            impl Arbitrary for $t {
                type Strategy = Any<$t>;
                fn arbitrary() -> Any<$t> {
                    Any(core::marker::PhantomData)
                }
            }
        )*};
    }
    impl_arbitrary_via_standard!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64);

    /// The `any::<T>()` entry point.
    pub fn any<T: Arbitrary>() -> T::Strategy {
        T::arbitrary()
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;

    /// Strategy for `Vec`s with element strategy `S` and length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min: usize,
        max_exclusive: usize,
    }

    /// Length specification accepted by [`vec`].
    pub trait IntoSizeRange {
        /// Lower and exclusive upper length bounds.
        fn bounds(self) -> (usize, usize);
    }

    impl IntoSizeRange for core::ops::Range<usize> {
        fn bounds(self) -> (usize, usize) {
            (self.start, self.end)
        }
    }

    impl IntoSizeRange for core::ops::RangeInclusive<usize> {
        fn bounds(self) -> (usize, usize) {
            (*self.start(), *self.end() + 1)
        }
    }

    impl IntoSizeRange for usize {
        fn bounds(self) -> (usize, usize) {
            (self, self + 1)
        }
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: impl IntoSizeRange) -> VecStrategy<S> {
        let (min, max_exclusive) = len.bounds();
        assert!(min < max_exclusive, "empty length range");
        VecStrategy {
            element,
            min,
            max_exclusive,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut SmallRng) -> Vec<S::Value> {
            use rand::RngExt;
            let len = rng.random_range(self.min..self.max_exclusive);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod test_runner {
    //! Case-count configuration.

    /// A property-body failure (the `Err` side of a proptest body).
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure carrying `reason`.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError(reason.into())
        }
    }

    impl core::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// How many random cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct ProptestConfig {
        /// Number of generated cases.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Config running `cases` cases per property.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            // The real proptest defaults to 256; 64 keeps offline CI quick while
            // still exercising a meaningful sample.
            ProptestConfig { cases: 64 }
        }
    }
}

pub mod prelude {
    //! The glob-import surface: `use proptest::prelude::*;`.

    pub use crate::collection;
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[doc(hidden)]
pub use rand as __rand;

/// Seed for the deterministic test-case stream, derived from the property name.
#[doc(hidden)]
pub fn derive_case_seed(name: &str) -> u64 {
    // FNV-1a over the property name: stable across runs and platforms.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.as_bytes() {
        h ^= *b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Defines property tests: each `fn name(arg in strategy, ..) { body }` becomes a
/// `#[test]` that runs the body over deterministically generated random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ @cfg($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{
            @cfg($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (@cfg($cfg:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let __strategies = ($($strat,)+);
            let mut __rng = <$crate::__rand::rngs::SmallRng as $crate::__rand::SeedableRng>::seed_from_u64(
                $crate::derive_case_seed(concat!(module_path!(), "::", stringify!($name))),
            );
            for __case in 0..__config.cases {
                let __values =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __run = || -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    let ($($arg,)+) = __values;
                    $body
                    Ok(())
                };
                match ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(__run)) {
                    Ok(Ok(())) => {}
                    Ok(Err(__fail)) => {
                        panic!(
                            "proptest case {}/{} of {} failed: {}",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                            __fail,
                        );
                    }
                    Err(__panic) => {
                        eprintln!(
                            "proptest case {}/{} of {} failed",
                            __case + 1,
                            __config.cases,
                            stringify!($name),
                        );
                        ::std::panic::resume_unwind(__panic);
                    }
                }
            }
        }
    )*};
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Uniformly picks one of several strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($branch:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($branch)),+
        ])
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges respect their bounds.
        #[test]
        fn ranges_in_bounds(x in 3u32..17, f in -1.0f64..1.0) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((-1.0..1.0).contains(&f));
        }

        /// Vec lengths respect the size range; prop_map applies.
        #[test]
        fn vec_and_map(
            v in collection::vec(0u64..100, 2..9),
            p in (0u8..4, 0u8..4).prop_map(|(a, b)| (a as u16) * 4 + b as u16),
        ) {
            prop_assert!((2..9).contains(&v.len()));
            prop_assert!(v.iter().all(|&x| x < 100));
            prop_assert!(p < 16);
        }

        /// prop_oneof mixes branches; any::<bool> generates both values eventually.
        #[test]
        fn oneof_and_any(
            choice in prop_oneof![
                (0u8..3).prop_map(|x| x as u32),
                (10u8..13).prop_map(|x| x as u32),
            ],
            b in any::<bool>(),
        ) {
            prop_assert!(choice < 3 || (10..13).contains(&choice));
            let _ = b;
        }
    }
}
