//! Vendored FxHash: the non-cryptographic hash the Rust compiler uses for its
//! own interning tables, as a drop-in `std::collections` hasher.
//!
//! The workspace's hot maps are keyed by small integers and integer pairs
//! (node ids, grid cells, vehicle ids). SipHash — `std`'s default, chosen for
//! HashDoS resistance — costs more than the rest of the probe for such keys.
//! FxHash is a multiply-rotate mix: weaker guarantees, but deterministic
//! across runs and platforms (no random seed), which is exactly what a
//! reproducible simulator wants, and several times faster on short keys.
//!
//! The algorithm matches `rustc-hash` 1.x: for every machine word `w` of
//! input, `state = (state.rotate_left(5) ^ w).wrapping_mul(K)` with the
//! 64-bit constant `K = 0x51_7c_c1_b7_27_22_0a_95`.
//!
//! None of the simulator's output may depend on map iteration order — the
//! determinism suite (golden reports, 1-vs-N thread identity) pins that down,
//! so swapping hashers cannot change results, only speed.

#![warn(missing_docs)]

use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative mixing constant (rustc-hash's 64-bit `K`).
const K: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// A [`Hasher`] implementing the rustc FxHash algorithm.
///
/// Not HashDoS-resistant: keys here are trusted simulator state, never
/// attacker-controlled input.
#[derive(Debug, Clone, Copy, Default)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn add_word(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(K);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.add_word(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut word = [0u8; 8];
            word[..rest.len()].copy_from_slice(rest);
            self.add_word(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u8(&mut self, i: u8) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u16(&mut self, i: u16) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_word(i);
    }

    #[inline]
    fn write_u128(&mut self, i: u128) {
        self.add_word(i as u64);
        self.add_word((i >> 64) as u64);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_i64(&mut self, i: i64) {
        self.add_word(i as u64);
    }

    #[inline]
    fn write_isize(&mut self, i: isize) {
        self.add_word(i as u64);
    }
}

/// [`std::hash::BuildHasher`] producing [`FxHasher`]s (zero-sized, seedless).
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with FxHash.
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with FxHash.
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// An `FxHashMap` pre-sized for `capacity` entries.
pub fn map_with_capacity<K, V>(capacity: usize) -> FxHashMap<K, V> {
    FxHashMap::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

/// An `FxHashSet` pre-sized for `capacity` entries.
pub fn set_with_capacity<T>(capacity: usize) -> FxHashSet<T> {
    FxHashSet::with_capacity_and_hasher(capacity, FxBuildHasher::default())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::hash::{BuildHasher, Hash};

    fn hash_of<T: Hash>(v: &T) -> u64 {
        FxBuildHasher::default().hash_one(v)
    }

    #[test]
    fn deterministic_across_hasher_instances() {
        // Seedless: the same key hashes identically in fresh hashers, maps, and
        // (by construction) across processes and platforms.
        assert_eq!(hash_of(&42u64), hash_of(&42u64));
        assert_eq!(hash_of(&(3i64, -7i64)), hash_of(&(3i64, -7i64)));
        assert_eq!(hash_of(&"road"), hash_of(&"road"));
    }

    #[test]
    fn matches_reference_algorithm() {
        // Single u64 word through the published recurrence, by hand:
        // state = (0.rotate_left(5) ^ w).wrapping_mul(K)
        let w = 0xdead_beefu64;
        let expected = w.wrapping_mul(K);
        assert_eq!(hash_of(&w), expected);
    }

    #[test]
    fn nearby_keys_spread() {
        // Sequential ids (the common key pattern) must spread across the top
        // bits hashbrown uses for its control bytes. A random function would
        // land ~81 distinct values of 128 draws into 128 slots; anything past
        // half that rules out the degenerate identity-like behavior this
        // guards against.
        let mut top7 = FxHashSet::default();
        for id in 0u64..128 {
            top7.insert(hash_of(&id) >> 57);
        }
        assert!(top7.len() > 40, "high bits barely vary: {}", top7.len());
    }

    #[test]
    fn byte_stream_equals_word_stream_for_whole_words() {
        // write() chunks little-endian words through the same recurrence.
        let mut a = FxHasher::default();
        a.write(&0x0102_0304_0506_0708u64.to_le_bytes());
        let mut b = FxHasher::default();
        b.write_u64(0x0102_0304_0506_0708);
        assert_eq!(a.finish(), b.finish());
        // Trailing partial words are zero-padded, not dropped.
        let mut c = FxHasher::default();
        c.write(&[1, 2, 3]);
        assert_ne!(c.finish(), FxHasher::default().finish());
    }

    #[test]
    fn map_and_set_aliases_work() {
        let mut m: FxHashMap<(i64, i64), Vec<u64>> = map_with_capacity(16);
        assert!(m.capacity() >= 16);
        m.entry((1, -2)).or_default().push(7);
        assert_eq!(m[&(1, -2)], vec![7]);
        let mut s: FxHashSet<u32> = set_with_capacity(4);
        s.insert(9);
        assert!(s.contains(&9));
    }
}
