//! Vendored minimal stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so the workspace carries
//! this small, dependency-free implementation of the slice of the rand 0.10 API
//! it actually uses: [`rngs::SmallRng`] (xoshiro256++), [`SeedableRng`],
//! [`RngExt`] (`random`, `random_range`, `random_bool`), and
//! [`seq::SliceRandom`] (`shuffle`, `choose`).
//!
//! Determinism is the only hard requirement: the whole simulation suite derives
//! reproducibility from `seed_from_u64`, so the generator here is a fixed,
//! well-known algorithm (xoshiro256++ seeded via SplitMix64) that will never
//! change between builds.

/// A seedable random number generator.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Core entropy source: a stream of uniform 64-bit words.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Types that can be sampled uniformly from an rng ("standard" distribution).
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// A range usable with [`RngExt::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add((rng.next_u64() % span) as i64) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i64).wrapping_sub(lo as i64) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (lo as i64).wrapping_add((rng.next_u64() % (span + 1)) as i64) as $t
            }
        }
    )*};
}
impl_range_int!(i8, i16, i32, i64);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <f64 as Standard>::sample(rng) as $t;
                self.start + (self.end - self.start) * unit
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            #[inline]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                let unit = <f64 as Standard>::sample(rng) as $t;
                lo + (hi - lo) * unit
            }
        }
    )*};
}
impl_range_float!(f32, f64);

/// Convenience sampling methods, blanket-implemented for every [`RngCore`].
pub trait RngExt: RngCore {
    /// Draws one value of an inferable type.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws one value uniformly from `range`.
    #[inline]
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        <f64 as Standard>::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> RngExt for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and of ample quality for simulation draws.
    ///
    /// Matches the reference implementation by Blackman & Vigna (public domain);
    /// seeding expands a 64-bit seed through SplitMix64 as they recommend.
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            SmallRng { s }
        }
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let mut s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            s3 = s3.rotate_left(45);
            self.s = [s0, s1, s2, s3];
            result
        }
    }
}

pub mod seq {
    //! Sequence-related sampling: shuffles and random element choice.

    use super::{RngCore, RngExt};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// A uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{RngExt, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.random::<u64>(), c.random::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.random_range(10u32..20);
            assert!((10..20).contains(&x));
            let y = rng.random_range(5u64..=5);
            assert_eq!(y, 5);
            let f = rng.random_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&f));
        }
    }

    #[test]
    fn bool_probability_extremes() {
        let mut rng = SmallRng::seed_from_u64(2);
        assert!(!(0..100).any(|_| rng.random_bool(0.0)));
        assert!((0..100).all(|_| rng.random_bool(1.0)));
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_covers_slice() {
        let mut rng = SmallRng::seed_from_u64(4);
        let v = [1, 2, 3];
        for _ in 0..10 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
