//! The paper's §2.1.1 area-partition pipeline, end to end:
//!
//! 1. start from an **unclassified** digital map (nobody has marked arteries yet),
//! 2. observe traffic for a few simulated minutes ([`TrafficCensus`] — the paper
//!    counts vehicles from Google Maps),
//! 3. run the **artery selection** sweep: pick the busiest corridor per ~500 m
//!    window, add quiet roads where a window has no busy one,
//! 4. build the road-adapted partition on the selected arteries.
//!
//! Validation: traffic is generated on a ground-truth map whose arteries we know,
//! so we can score how many the selection recovered.
//!
//! ```sh
//! cargo run --release --example artery_selection
//! ```

use hlsrg_suite::des::SimTime;
use hlsrg_suite::mobility::{
    LightConfig, MobilityConfig, MobilityModel, TrafficCensus, TrafficLights,
};
use hlsrg_suite::roadnet::{
    apply_selection, generate_grid, select_arteries, ArterySelectConfig, GridMapSpec, Partition,
    RoadClass, RoadNetworkBuilder,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    // Ground truth: the paper's 2 km map. Traffic flows on it with the usual
    // artery bias, but the copy we hand to the selection has no classes at all.
    let truth = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
    let mut b = RoadNetworkBuilder::new();
    for i in truth.intersections() {
        b.add_intersection(i.pos);
    }
    for r in truth.roads() {
        b.add_road(r.a, r.b, RoadClass::Normal);
    }
    let blank = b.build();

    // Step 2: observe traffic for 3 simulated minutes.
    println!("observing traffic (500 vehicles, 180 s) ...");
    let lights = TrafficLights::new(&truth, LightConfig::default());
    let mut rng = SmallRng::seed_from_u64(7);
    let mut model = MobilityModel::new(&truth, MobilityConfig::default(), 500, &mut rng);
    let mut census = TrafficCensus::new(&truth);
    let mut now = SimTime::ZERO;
    for _ in 0..360 {
        model.step(&truth, &lights, now);
        census.observe(&model.vehicles());
        now += model.config().tick;
    }

    // Step 3: the selection sweep.
    let cfg = ArterySelectConfig::default();
    let selection = select_arteries(&blank, census.counts(), &cfg);
    println!("\nselected corridors (axis, coordinate, density):");
    for c in &selection.corridors {
        println!(
            "  {:?}-axis line at {:>6.0} m — {:>7.2} veh-ticks/m over {} segments",
            c.axis,
            c.coordinate,
            c.density(),
            c.roads.len()
        );
    }

    // Score against the ground truth.
    let rebuilt = apply_selection(&blank, &selection);
    let mut agree = 0;
    let mut truth_arteries = 0;
    for (t, r) in truth.roads().iter().zip(rebuilt.roads()) {
        if t.class == RoadClass::Artery {
            truth_arteries += 1;
            if r.class == RoadClass::Artery {
                agree += 1;
            }
        }
    }
    println!(
        "\nrecovered {agree}/{truth_arteries} ground-truth artery segments ({:.0}%)",
        100.0 * agree as f64 / truth_arteries as f64
    );

    // Step 4: the partition over the selected arteries.
    let partition = Partition::build(&rebuilt, cfg.target_pitch);
    let (nx, ny) = partition.l1_dims();
    println!(
        "partition: {nx}×{ny} road-adapted L1 grids, {} L2, {} L3, {} RSUs",
        partition.l2_count(),
        partition.l3_count(),
        partition.rsus().len()
    );
}
