//! Map explorer — renders the road-adapted partition of a paper-style map as
//! ASCII art and prints the hierarchy inventory (grids, centers, RSUs, wiring).
//!
//! ```sh
//! cargo run --release --example map_explorer            # the 2 km paper map
//! cargo run --release --example map_explorer -- 4000    # a 4 km map (2×2 L3 mesh)
//! ```

use hlsrg_suite::geo::Point;
use hlsrg_suite::roadnet::{generate_grid, GridMapSpec, L1Id, Partition, RoadClass};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let size: f64 = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(2000.0);
    let spec = GridMapSpec::paper(size);
    let net = generate_grid(&spec, &mut SmallRng::seed_from_u64(0));
    let partition = Partition::build(&net, 500.0);

    println!("map {size:.0} m × {size:.0} m");
    println!("  intersections   {:>6}", net.intersection_count());
    println!("  road segments   {:>6}", net.road_count());
    let arteries = net
        .roads()
        .iter()
        .filter(|r| r.class == RoadClass::Artery)
        .count();
    println!(
        "  arteries        {:>6} ({:.0}% of segments)",
        arteries,
        100.0 * arteries as f64 / net.road_count() as f64
    );
    println!(
        "  total road      {:>6.1} km",
        net.total_road_length() / 1000.0
    );
    let (nx1, ny1) = partition.l1_dims();
    let (nx2, ny2) = partition.l2_dims();
    let (nx3, ny3) = partition.l3_dims();
    println!(
        "  L1 grids        {:>6} ({nx1}×{ny1}, 500 m, artery-bounded)",
        partition.l1_count()
    );
    println!(
        "  L2 grids        {:>6} ({nx2}×{ny2}, RSU at each center)",
        partition.l2_count()
    );
    println!(
        "  L3 grids        {:>6} ({nx3}×{ny3}, RSU at each center)",
        partition.l3_count()
    );
    println!("  RSUs            {:>6}", partition.rsus().len());
    println!("  wired links     {:>6}", partition.wired_links().len());

    // ASCII render: one character per 125 m lattice point.
    // '#': artery intersection, '+': normal intersection,
    // 'C': L1 grid center, '2'/'3': RSU sites.
    println!("\nlegend: # artery crossing · + normal road · C L1 center · 2 L2 RSU · 3 L3 RSU\n");
    let cols = spec.cols();
    let rows = spec.rows();
    let cell = spec.spacing;
    for iy in (0..rows).rev() {
        let mut line = String::with_capacity(cols * 2);
        for ix in 0..cols {
            let p = Point::new(ix as f64 * cell, iy as f64 * cell);
            let id = net.nearest_intersection(p);
            let mut ch = if spec.is_artery_line(ix) || spec.is_artery_line(iy) {
                '#'
            } else {
                '+'
            };
            for g in 0..partition.l1_count() as u32 {
                if partition.l1_center(L1Id(g)) == id {
                    ch = 'C';
                }
            }
            for site in partition.rsus() {
                if site.pos == p {
                    ch = match site.level {
                        hlsrg_suite::roadnet::RsuLevel::L2 => '2',
                        hlsrg_suite::roadnet::RsuLevel::L3 => '3',
                    };
                }
            }
            line.push(ch);
            line.push(' ');
        }
        println!("  {line}");
    }

    println!("\nwired backbone:");
    for &(a, b) in partition.wired_links() {
        let pa = partition.rsus()[a.0 as usize].pos;
        let pb = partition.rsus()[b.0 as usize].pos;
        println!("  {a} {pa} <-> {b} {pb}");
    }
}
