//! Regenerates every figure of the paper's evaluation section and prints the
//! series plus the headline ratios.
//!
//! ```sh
//! cargo run --release --example paper_figures            # smoke scale, ~10 s
//! cargo run --release --example paper_figures -- --paper # full published sweep
//! ```

use hlsrg_suite::scenario::{fig3_2, fig3_345, FigureScale};

fn main() {
    let scale = if std::env::args().any(|a| a == "--paper") {
        FigureScale::Paper
    } else {
        FigureScale::Smoke
    };
    println!("scale: {scale:?}\n");

    let f2 = fig3_2(scale);
    println!("{f2}");
    println!("{}", f2.to_ascii_chart());
    println!(
        ">>> HLSRG sends {:.0}% fewer location updates than RLSMP (paper: ~50% fewer)\n",
        100.0 * (1.0 - f2.mean_ratio())
    );

    let (f3, f4, f5) = fig3_345(scale);
    println!("{f3}");
    println!("{}", f3.to_ascii_chart());
    println!(
        ">>> HLSRG's query overhead is {:.0}% below RLSMP's (paper: ~15% below)\n",
        100.0 * (1.0 - f3.mean_ratio())
    );
    println!("{f4}");
    println!("{}", f4.to_ascii_chart());
    println!(
        ">>> HLSRG answers {:.2}x as many queries as RLSMP (paper: higher, near 100%)\n",
        f4.mean_ratio()
    );
    println!("{f5}");
    println!("{}", f5.to_ascii_chart());
    println!(
        ">>> HLSRG's mean query latency is {:.2}x RLSMP's (paper: lower)\n",
        f5.mean_ratio()
    );
}
