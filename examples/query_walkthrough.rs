//! A narrated walkthrough of one HLSRG query, event by event.
//!
//! Builds the paper's 2 km map with a handful of hand-placed vehicles, lets the
//! destination register, then traces a query through the hierarchy: request →
//! L1 center → (miss) → L2 RSU → back down → location-server election →
//! directional geo-broadcast → ACK.
//!
//! ```sh
//! cargo run --release --example query_walkthrough
//! ```

use hlsrg_suite::des::{EventQueue, SimDuration, SimTime};
use hlsrg_suite::geo::{Cardinal, Point, TurnKind};
use hlsrg_suite::mobility::{MoveSample, TurnEvent, VehicleId};
use hlsrg_suite::net::{
    Effect, LocationService, NetworkCore, NodeRegistry, RadioConfig, Transport, WiredNetwork,
};
use hlsrg_suite::protocol::{HlsrgConfig, HlsrgPayload, HlsrgProtocol, HlsrgTimer};
use hlsrg_suite::roadnet::{
    generate_grid, GridMapSpec, IntersectionId, Partition, RoadClass, RoadId,
};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::sync::Arc;

enum Ev {
    Deliver(hlsrg_suite::net::NodeId, Transport<HlsrgPayload>),
    Timer(HlsrgTimer),
}

fn describe(p: &HlsrgPayload) -> String {
    match p {
        HlsrgPayload::Update(u) => format!(
            "UPDATE from {} at {} ({:?})",
            u.vehicle, u.pos, u.road_class
        ),
        HlsrgPayload::TableHandoff { l1 } => format!("TABLE HANDOFF for {l1}"),
        HlsrgPayload::TableToL2 { l2, from_l1, rows } => {
            format!("TABLE {from_l1} → {l2} ({} rows)", rows.len())
        }
        HlsrgPayload::TableToL3 { l3, from_l2, rows } => {
            format!("TABLE {from_l2} → {l3} ({} rows)", rows.len())
        }
        HlsrgPayload::Request(r) => {
            format!("REQUEST {:?} for {} (stage {:?})", r.query, r.dst, r.stage)
        }
        HlsrgPayload::Notify(n) => format!("NOTIFY {:?} searching for {}", n.query, n.dst),
        HlsrgPayload::Ack { query } => format!("ACK {query:?}"),
        HlsrgPayload::Data { session, seq, .. } => format!("DATA {session:?} #{seq}"),
    }
}

fn main() {
    let net = generate_grid(&GridMapSpec::paper(2000.0), &mut SmallRng::seed_from_u64(0));
    let partition = Arc::new(Partition::build(&net, 500.0));

    // Cast of characters (2 km paper map: grid 0's center is (250,250), grid 5's
    // is (750,750); the L2#0 RSU sits at (500,500), the L3 RSU at (1000,1000)).
    let positions = [
        ("custodian of grid 0", Point::new(250.0, 250.0)),
        ("custodian of grid 5", Point::new(750.0, 750.0)),
        (
            "Dv — the sought vehicle, eastbound on artery y=500",
            Point::new(700.0, 500.0),
        ),
        (
            "Sv — the asking vehicle, in grid 0",
            Point::new(150.0, 250.0),
        ),
        ("relay", Point::new(500.0, 400.0)),
    ];
    let mut reg = NodeRegistry::new(500.0);
    for (i, (_, p)) in positions.iter().enumerate() {
        reg.add_vehicle(VehicleId(i as u32), *p);
    }
    for site in partition.rsus() {
        reg.add_rsu(site.id, site.pos);
    }
    println!("cast:");
    for (i, (who, p)) in positions.iter().enumerate() {
        println!("  v{i} @ {p} — {who}");
    }
    for site in partition.rsus() {
        println!("  {} @ {} — level {:?} RSU", site.id, site.pos, site.level);
    }

    let radio = RadioConfig {
        reliable_fraction: 1.0,
        edge_delivery: 1.0,
        ..Default::default()
    };
    let wired = WiredNetwork::from_partition(&partition, SimDuration::from_millis(2));
    let mut core = NetworkCore::new(reg, radio, wired, SmallRng::seed_from_u64(1));
    let mut proto = HlsrgProtocol::new(
        &net,
        Arc::clone(&partition),
        HlsrgConfig::default(),
        SmallRng::seed_from_u64(2),
    );

    let mut queue: EventQueue<Ev> = EventQueue::new();
    let apply = |queue: &mut EventQueue<Ev>, fx: Vec<Effect<HlsrgPayload, HlsrgTimer>>| {
        for f in fx {
            match f {
                Effect::Deliver(e) => queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport)),
                Effect::Timer { delay, key } => queue.schedule_after(delay, Ev::Timer(key)),
            }
        }
    };

    // Dv registers: it turned onto the artery y=500 heading east.
    println!("\n--- t=0: Dv turns onto the artery and broadcasts a location update ---");
    let dv_pos = Point::new(700.0, 500.0);
    let sample = MoveSample {
        id: VehicleId(2),
        old_pos: dv_pos,
        new_pos: dv_pos,
        road: RoadId(0),
        from: IntersectionId(0),
        road_class: RoadClass::Artery,
        heading: Cardinal::East.into(),
        speed: 12.0,
        turn: Some(TurnEvent {
            at: IntersectionId(0),
            from_road: RoadId(1),
            to_road: RoadId(0),
            kind: TurnKind::Turn,
            from_class: RoadClass::Normal,
            onto_class: RoadClass::Artery,
        }),
    };
    let fx = proto.on_move(&mut core, &[sample], SimTime::ZERO);
    apply(&mut queue, fx);
    // Run collection so the hierarchy learns about Dv.
    let fx = proto.on_start(&mut core);
    apply(&mut queue, fx);

    // Drain quietly until the tables are primed, then launch the query loudly.
    let mut launched = false;
    let mut done = false;
    while let Some((now, ev)) = queue.pop() {
        if now > SimTime::from_secs(60) {
            break;
        }
        if !launched && now > SimTime::from_secs(25) {
            launched = true;
            println!("\n--- t={now}: Sv launches a query for Dv ---");
            let fx = proto.launch_query(&mut core, VehicleId(3), VehicleId(2), now);
            apply(&mut queue, fx);
        }
        match ev {
            Ev::Deliver(to, tr) => {
                let (arrived, more) = core.handle_deliver(to, tr);
                for e in more {
                    queue.schedule_after(e.delay, Ev::Deliver(e.to, e.transport));
                }
                if let Some((_class, payload)) = arrived {
                    if launched && !done {
                        println!("  {now}  {to} receives {}", describe(&payload));
                        if matches!(payload, HlsrgPayload::Ack { .. }) {
                            done = true;
                        }
                    }
                    let fx = proto.on_packet(&mut core, to, _class, payload, now);
                    apply(&mut queue, fx);
                }
            }
            Ev::Timer(key) => {
                if launched && !done {
                    match &key {
                        HlsrgTimer::ServeNotify { server, .. } => {
                            println!("  {now}  {server} wins the 0–15-slot election → notifies")
                        }
                        HlsrgTimer::Escalate { server, request } => println!(
                            "  {now}  {server} escalation backoff expired → forward (stage {:?})",
                            request.stage
                        ),
                        _ => {}
                    }
                }
                let fx = proto.on_timer(&mut core, key, now);
                apply(&mut queue, fx);
            }
        }
    }

    let log = proto.query_log();
    println!(
        "\nresult: {} query, {} answered",
        log.launched_count(),
        log.success_count(SimDuration::from_secs(30))
    );
    if let Some(lat) = log.latency_stats(SimDuration::from_secs(30)).mean() {
        println!("latency: {lat:.4} s");
    }
}
