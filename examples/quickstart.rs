//! Quickstart: run both location services on one scenario and compare them.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

fn main() {
    // A 1 km paper-style map, 80 vehicles, 90 s — seconds of wall time.
    let cfg = SimConfig::quick_demo(42);
    println!(
        "map {:.0} m, {} vehicles, {} sim seconds\n",
        cfg.map.width,
        cfg.vehicles,
        cfg.duration.as_secs_f64()
    );

    for protocol in Protocol::ALL {
        let r = run_simulation(&cfg, protocol);
        println!("== {} ==", r.protocol);
        println!("  update packets        {:>8}", r.update_packets);
        println!("  collection radio tx   {:>8}", r.collection_radio_tx);
        println!("  collection wired tx   {:>8}", r.collection_wired_tx);
        println!("  query radio tx        {:>8}", r.query_radio_tx);
        println!("  query wired tx        {:>8}", r.query_wired_tx);
        println!("  queries               {:>8}", r.queries_launched);
        println!("  success rate          {:>8.2}", r.success_rate);
        match r.mean_latency() {
            Some(l) => println!("  mean latency          {:>7.3}s", l),
            None => println!("  mean latency               n/a"),
        }
        println!("  artery share          {:>8.2}", r.artery_share);
        if let Some(d) = r.data_delivery_ratio() {
            println!(
                "  data delivery         {:>8.2} ({} of {} packets)",
                d, r.data_delivered, r.data_sent
            );
        }
        println!("  drops (upd/coll/qry)  {:?}", r.drops);
        println!(
            "  drop causes (ttl/iso/noprog/loss/noroute) {:?}",
            r.drop_breakdown
        );
        for (k, v) in &r.diagnostics {
            println!("  {k:<21} {v:>8.1}");
        }
        println!();
    }
}
