//! The paper's two-simulator pipeline, reproduced end to end:
//!
//! 1. the mobility simulator produces a navigation scenario (VanetMobiSim's role),
//! 2. the scenario is written out as an **ns-2 movement trace**,
//! 3. the network simulation replays the trace file and runs HLSRG on it
//!    (ns-2's role), map-matching positions back onto the road graph.
//!
//! ```sh
//! cargo run --release --example trace_pipeline
//! ```

use hlsrg_suite::des::{SimDuration, SimTime};
use hlsrg_suite::mobility::{LightConfig, MobilityConfig, MobilityModel, Ns2Trace, TrafficLights};
use hlsrg_suite::roadnet::{generate_grid, GridMapSpec};
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn main() {
    let (size, vehicles, secs) = (2000.0, 300, 200u64);

    // Step 1+2: generate mobility and serialize it as an ns-2 trace.
    println!("[1/3] simulating {vehicles} vehicles for {secs}s and recording the trace ...");
    let net = generate_grid(&GridMapSpec::paper(size), &mut SmallRng::seed_from_u64(0));
    let lights = TrafficLights::new(&net, LightConfig::default());
    let mut rng = SmallRng::seed_from_u64(11);
    let mut model = MobilityModel::new(&net, MobilityConfig::default(), vehicles, &mut rng);
    let ticks = (SimTime::from_secs(secs).as_micros() / model.config().tick.as_micros()) as usize;
    let trace = Ns2Trace::record(&net, &lights, &mut model, ticks);
    let text = trace.to_ns2_text();
    println!(
        "      {} setdest commands, {:.1} KiB of trace text, horizon {}",
        trace.commands.len(),
        text.len() as f64 / 1024.0,
        trace.horizon()
    );

    // Step 3: hand the *text* to the network simulation.
    println!("[2/3] replaying the trace through the network simulation ...");
    let mut cfg = SimConfig::paper_fig3_2(size, 1, 11); // fleet size comes from the trace
    cfg.duration = SimDuration::from_secs(secs);
    cfg.warmup = SimDuration::from_secs(60);
    cfg.trace_ns2 = Some(text);
    let traced = run_simulation(&cfg, Protocol::Hlsrg);

    // Reference: the same world driven natively.
    println!("[3/3] running the same scenario natively for comparison ...\n");
    let mut native_cfg = SimConfig::paper_fig3_2(size, vehicles, 11);
    native_cfg.duration = SimDuration::from_secs(secs);
    native_cfg.warmup = SimDuration::from_secs(60);
    let native = run_simulation(&native_cfg, Protocol::Hlsrg);

    println!("{:>22} {:>12} {:>12}", "", "trace-driven", "native");
    println!(
        "{:>22} {:>12} {:>12}",
        "vehicles", traced.vehicles, native.vehicles
    );
    println!(
        "{:>22} {:>12} {:>12}",
        "update packets", traced.update_packets, native.update_packets
    );
    println!(
        "{:>22} {:>12} {:>12}",
        "query radio tx", traced.query_radio_tx, native.query_radio_tx
    );
    println!(
        "{:>22} {:>12.2} {:>12.2}",
        "success rate", traced.success_rate, native.success_rate
    );
    println!(
        "{:>22} {:>11.3}s {:>11.3}s",
        "mean latency",
        traced.mean_latency().unwrap_or(f64::NAN),
        native.mean_latency().unwrap_or(f64::NAN)
    );
    println!("\n(the trace quantizes kinematics into waypoint commands, so counts differ");
    println!(" slightly; the protocol dynamics and conclusions are the same)");
}
