//! Fleet tracking — the application the paper's introduction motivates: "help the
//! vehicle fleet and freight wagons using the same goods vehicle transport system
//! to reduce unnecessary redundant traffic path and waiting time".
//!
//! A dispatcher vehicle periodically locates every truck of its fleet through the
//! HLSRG location service. We measure per-truck time-to-locate and compare against
//! running the same dispatch workload over RLSMP.
//!
//! ```sh
//! cargo run --release --example fleet_tracking
//! ```

use hlsrg_suite::des::{SimDuration, SimTime};
use hlsrg_suite::mobility::VehicleId;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

fn main() {
    let vehicles = 400;
    // Vehicle 0 is the dispatcher; vehicles 1..=12 are the fleet.
    let fleet: Vec<VehicleId> = (1..=12).map(VehicleId).collect();

    // Three dispatch rounds: locate every truck at t = 90 s, 150 s, 210 s.
    let mut queries = Vec::new();
    for (round, t) in [90u64, 150, 210].into_iter().enumerate() {
        for (i, &truck) in fleet.iter().enumerate() {
            // Stagger within the round so requests don't all collide.
            let at =
                SimTime::from_secs(t) + SimDuration::from_millis(137 * (i as u64 + round as u64));
            queries.push((at, VehicleId(0), truck));
        }
    }

    let mut cfg = SimConfig::paper_2km(vehicles, 7);
    cfg.explicit_queries = Some(queries.clone());
    cfg.validate();

    println!(
        "dispatcher tracking a {}-truck fleet, {} dispatch rounds, {} vehicles total\n",
        fleet.len(),
        3,
        vehicles
    );
    for protocol in Protocol::ALL {
        let r = run_simulation(&cfg, protocol);
        println!("== {} ==", r.protocol);
        println!("  lookups launched      {:>6}", r.queries_launched);
        println!("  trucks located        {:>6}", r.queries_succeeded);
        println!("  fleet visibility      {:>5.0}%", 100.0 * r.success_rate);
        match r.mean_latency() {
            Some(l) => println!("  mean time-to-locate   {:>5.2}s", l),
            None => println!("  mean time-to-locate     n/a"),
        }
        println!(
            "  control traffic       {:>6} radio tx ({} update, {} query)",
            r.update_radio_tx + r.collection_radio_tx + r.query_radio_tx,
            r.update_radio_tx,
            r.query_radio_tx
        );
        println!();
    }
    println!("(the dispatcher contacts each truck through the location service; a");
    println!(" located truck has ACKed with its position, after which GPSR can carry");
    println!(" freight-coordination data directly)");
}
