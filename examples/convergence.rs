//! Convergence: how fast the hierarchy's knowledge fills up after a cold start.
//!
//! Samples the HLSRG tables every 10 s of a paper-scale run and prints the
//! occupancy of each level against elapsed time — the warm-up dynamics that decide
//! how soon after deployment the location service becomes dependable.
//!
//! ```sh
//! cargo run --release --example convergence
//! ```

use hlsrg_suite::des::SimDuration;
use hlsrg_suite::scenario::{run_simulation, Protocol, SimConfig};

fn main() {
    let mut cfg = SimConfig::paper_2km(500, 9);
    cfg.timeline_period = Some(SimDuration::from_secs(10));
    let r = run_simulation(&cfg, Protocol::Hlsrg);

    let diag = |p: &hlsrg_suite::scenario::TimelinePoint, key: &str| {
        p.diagnostics
            .iter()
            .find(|(k, _)| *k == key)
            .map(|&(_, v)| v)
            .unwrap_or(0.0)
    };

    println!(
        "{} vehicles, cold start at t=0 (initial registration broadcast)\n",
        cfg.vehicles
    );
    println!(
        "{:>6} {:>10} {:>10} {:>10} {:>10} {:>10}",
        "t (s)", "L1 known", "L2 known", "L3 known", "updates", "answered"
    );
    for p in &r.timeline {
        println!(
            "{:>6.0} {:>10.0} {:>10.0} {:>10.0} {:>10} {:>10}",
            p.t,
            diag(p, "l1_entries"),
            diag(p, "l2_entries"),
            diag(p, "l3_entries"),
            p.update_packets,
            p.queries_completed,
        );
    }
    println!(
        "\nfinal: success {:.2}, mean latency {:.3}s",
        r.success_rate,
        r.mean_latency().unwrap_or(f64::NAN)
    );
    println!("(L1/L2 counts sum over grids and can exceed the fleet size — a vehicle");
    println!(" whose old grid never heard its newer update is briefly known in two");
    println!(" places; L3's longer lifetime keeps the whole fleet visible somewhere)");
}
